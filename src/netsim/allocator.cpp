#include "netsim/allocator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/scatter.hpp"

namespace echelon::netsim {

std::uint32_t RateAllocator::uf_find(std::uint32_t slot) noexcept {
  // Path halving: each step links a node to its grandparent, flattening the
  // tree as a side effect of the lookup.
  while (uf_parent_[slot] != slot) {
    uf_parent_[slot] = uf_parent_[uf_parent_[slot]];
    slot = uf_parent_[slot];
  }
  return slot;
}

void RateAllocator::allocate(std::span<Flow*> flows, SimTime now) {
  ++pass_;
  ++stats_.passes;

  // Per-round link state, stamped only for links that carry at least one
  // flow (lazy epoch reset; no per-pass map rebuild).
  links_.begin_pass(*topo_);
  af_.clear();
  path_flat_.clear();
  uf_parent_.clear();
  prev_rate_.clear();
  rate_changed_.clear();

  // Snapshot incoming rates so the pass can report exactly which flows the
  // reallocation actually changed (the Simulator's heap-patch dirty set).
  for (const Flow* f : flows) prev_rate_.push_back(f->rate);

  // --- Phase A: scan. Classify trivial flows, build the contended flow
  // list, accumulate per-link loads, and thread the union-find through the
  // per-link owner slots. ---
  for (Flow* f : flows) {
    if (f->finished()) {
      f->rate = 0.0;
      continue;
    }
    f->rate = 0.0;
    // Zero-size or zero-cap flows are trivially done / stalled.
    if (f->rate_cap && *f->rate_cap <= 0.0) continue;
    // A flow with an empty path (src == dst, e.g. loopback shard exchange)
    // is never network-limited; grant its cap or effectively-infinite rate.
    if (f->path.empty()) {
      f->rate = f->rate_cap ? *f->rate_cap
                            : std::numeric_limits<double>::infinity();
      continue;
    }
    const auto slot = static_cast<std::uint32_t>(af_.size());
    // Clamp degenerate weights: a zero/negative weight used to divide by
    // zero in the water level (and trip the unfrozen_weight assert).
    const double w = f->weight > kMinFlowWeight ? f->weight : kMinFlowWeight;
    const auto begin = static_cast<std::uint32_t>(path_flat_.size());
    uf_parent_.push_back(slot);
    for (LinkId lid : f->path) {
      path_flat_.push_back(static_cast<std::uint32_t>(lid.value()));
      LinkLoad& ll = links_.touch(
          lid, LinkLoad{topo_->link(lid).capacity, 0.0, slot});
      ll.unfrozen_weight += w;
      if (ll.owner_slot != slot) {
        // Shared link: this flow contends with the link's first owner.
        const std::uint32_t ra = uf_find(ll.owner_slot);
        const std::uint32_t rb = uf_find(slot);
        if (ra != rb) uf_parent_[rb] = ra;
      }
    }
    af_.push_back(ActiveFlow{
        f, begin, static_cast<std::uint32_t>(path_flat_.size()), w});
  }

  // --- Phase B: label components in first-member order and bucket member
  // slots with a counting-sort scatter (preserves ascending span order
  // within each component -- the order the fill and the cache validation
  // both rely on).
  const std::uint32_t n = static_cast<std::uint32_t>(af_.size());
  comp_of_root_.assign(n, kInvalidIndex);
  comp_of_.resize(n);
  std::uint32_t comps = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t r = uf_find(s);
    if (comp_of_root_[r] == kInvalidIndex) comp_of_root_[r] = comps++;
    comp_of_[s] = comp_of_root_[r];
  }
  bucket_scatter(
      n, comps, [&](std::size_t s) { return comp_of_[s]; },
      [](std::size_t s) { return static_cast<std::uint32_t>(s); },
      comp_start_, comp_cursor_, comp_members_);

  // --- Phase C: per component, reuse the cached converged rates when the
  // inputs are provably unchanged, otherwise water-fill (and re-cache).
  //
  // Structured as validate -> fill -> merge so the fills can run on the
  // shared pool (DESIGN.md §10). The serial cache-validation pass collects
  // the miss list (ascending component order) plus each miss's in-place
  // refresh candidate; the fills -- pure functions of per-component inputs
  // writing only their own members' rates and their own (link-disjoint)
  // links_ slots -- run in any order on any thread; and every
  // order-sensitive effect (record stores, stats, kCompFill emission)
  // happens serially afterwards in ascending-component order. Both paths
  // execute identical floating-point expressions on identical operands, so
  // rates, stats, the dirty set and the trace stream are bit-identical at
  // any thread count, including the serial path. ---
  stats_.components += comps;
  const std::uint64_t filled_before = stats_.components_filled;
  fill_comps_.clear();
  fill_cands_.clear();
  for (std::uint32_t c = 0; c < comps; ++c) {
    const std::uint32_t* members = comp_members_.data() + comp_start_[c];
    const std::size_t count = comp_start_[c + 1] - comp_start_[c];
    if (mode_ == AllocMode::kIncremental && try_reuse(members, count)) {
      ++stats_.components_reused;
      continue;
    }
    fill_comps_.push_back(c);
    fill_cands_.push_back(reuse_candidate_);
  }

  // --- Phase B2: equivalence-class partition of exactly the members of
  // to-be-filled components (reused components never pay for it), plus each
  // fill component's deduped link list. Serial; the fills below only read
  // its output. ---
  partition_classes();

  // Per-fill-component trace emission: one kCompFill (member count) + one
  // kClassFill (class count) pair, keyed on the component id so the merged
  // stream is in ascending-component order at any thread count (same-key
  // ties resolve by per-shard emission order -- the pair stays adjacent).
  const bool emit_comps = trace_ != nullptr && trace_components_;
  const auto fill_one = [&](std::size_t rank, FillScratch& fs) {
    if (fill_ == FillMode::kClass) {
      fill_component_class(rank, fs);
    } else {
      fill_component_perflow(rank, fs);
    }
  };
  const auto comp_fill_event = [&](std::uint32_t c) {
    return obs::TraceEvent{
        .kind = obs::TraceKind::kCompFill,
        .t = now,
        .id = pass_ - 1,
        .job = obs::TraceEvent::kNone,
        .ctx = c,
        .value = static_cast<double>(comp_start_[c + 1] - comp_start_[c])};
  };
  // kClassFill is emitted at *both* fill granularities (the partition is
  // computed regardless), keeping traced streams bit-identical across the
  // class-vs-per-flow differential suite.
  const auto class_fill_event = [&](std::size_t rank, std::uint32_t c) {
    return obs::TraceEvent{
        .kind = obs::TraceKind::kClassFill,
        .t = now,
        .id = pass_ - 1,
        .job = obs::TraceEvent::kNone,
        .ctx = c,
        .value = static_cast<double>(rank_class_start_[rank + 1] -
                                     rank_class_start_[rank])};
  };
  if (pool_ != nullptr && fill_comps_.size() > 1) {
    const unsigned workers =
        std::min<unsigned>(threads_ == 0 ? pool_->concurrency() : threads_,
                           pool_->concurrency());
    fill_scratch_.begin_pass(workers);
    if (emit_comps) comp_shards_.begin(workers);
    pool_->run(fill_comps_.size(), workers, [&](unsigned w, std::size_t i) {
      const std::uint32_t c = fill_comps_[i];
      fill_one(i, fill_scratch_.at(w));
      if (emit_comps) {
        comp_shards_.record(w, c, comp_fill_event(c));
        comp_shards_.record(w, c, class_fill_event(i, c));
      }
    });
    if (emit_comps) comp_shards_.merge_into(*trace_);
  } else {
    fill_scratch_.begin_pass(1);
    FillScratch& fs = fill_scratch_.at(0);
    for (std::size_t i = 0; i < fill_comps_.size(); ++i) {
      const std::uint32_t c = fill_comps_[i];
      fill_one(i, fs);
      if (emit_comps) {
        trace_->record(comp_fill_event(c));
        trace_->record(class_fill_event(i, c));
      }
    }
  }

  // Deterministic merge: the converged rates fan back out to the flows in a
  // serial scatter -- ascending fill-component order, ascending slot (==
  // ascending FlowId) within each component -- followed by the record-cache
  // store, exactly as the interleaved serial loop did. (Fills write only
  // cls_rate_/member_rate_; Flow::rate is written here and nowhere else on
  // the fill path, so the scatter order is the only rate-write order and is
  // independent of thread count.)
  stats_.components_filled += fill_comps_.size();
  stats_.classes += n_classes_;
  stats_.class_members += dirty_slots_.size();
  for (std::size_t i = 0; i < fill_comps_.size(); ++i) {
    const std::uint32_t c = fill_comps_[i];
    for (std::uint32_t mi = comp_start_[c]; mi < comp_start_[c + 1]; ++mi) {
      const std::uint32_t s = comp_members_[mi];
      af_[s].flow->rate = fill_ == FillMode::kClass
                              ? cls_rate_[class_of_slot_[s]]
                              : member_rate_[s];
    }
    if (mode_ == AllocMode::kIncremental) {
      reuse_candidate_ = fill_cands_[i];
      store_component(comp_members_.data() + comp_start_[c],
                      comp_start_[c + 1] - comp_start_[c]);
    }
  }
  if (mode_ == AllocMode::kIncremental) maybe_sweep_records(comps);

  // --- Dirty-set handoff + notification consumption. ---
  for (std::size_t i = 0; i < flows.size(); ++i) {
    Flow* f = flows[i];
    f->control_dirty = false;
    if (f->rate != prev_rate_[i]) rate_changed_.push_back(f);
  }

  // Observability: one event per pass, read-only, behind the null-sink
  // branch (DESIGN.md §9 no-perturbation contract).
  if (trace_ != nullptr) {
    trace_->record(obs::TraceEvent{
        .kind = obs::TraceKind::kAllocPass,
        .t = now,
        .id = pass_ - 1,
        .job = obs::TraceEvent::kNone,
        .ctx = comps,
        .value =
            static_cast<double>(stats_.components_filled - filled_before)});
  }
}

void RateAllocator::partition_classes() {
  // Collect the to-be-filled members, rank-major (ascending fill component,
  // ascending slot within) -- the canonical unit order both fills follow.
  dirty_slots_.clear();
  for (const std::uint32_t c : fill_comps_) {
    for (std::uint32_t mi = comp_start_[c]; mi < comp_start_[c + 1]; ++mi) {
      dirty_slots_.push_back(comp_members_[mi]);
    }
  }
  const std::size_t m = dirty_slots_.size();

  // Dense route-bucket keys: the interned RouteId, or a unique sentinel
  // above every real id for flows without one (direct path writes) -- those
  // become singleton classes, degrading gracefully to per-flow behavior.
  // Two flows sharing a RouteId share every link, hence a component, so a
  // *global* route bucket never straddles components and the scatter below
  // respects component boundaries for free.
  route_key_.resize(m);
  std::uint64_t route_limit = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const RouteId r = af_[dirty_slots_[i]].flow->route;
    if (r.valid()) route_limit = std::max(route_limit, r.value() + 1);
  }
  std::uint64_t next_sentinel = route_limit;
  for (std::size_t i = 0; i < m; ++i) {
    const RouteId r = af_[dirty_slots_[i]].flow->route;
    route_key_[i] = r.valid() ? r.value() : next_sentinel++;
  }
  bucket_scatter(
      m, static_cast<std::size_t>(next_sentinel),
      [&](std::size_t i) { return route_key_[i]; },
      [&](std::size_t i) { return dirty_slots_[i]; }, route_start_,
      route_cursor_, route_order_);

  // Split each route bucket by exact (weight, cap) value: classes of one
  // bucket are contiguous in class-id space, so the match scan is a short
  // walk over the bucket's own classes (distinct weight/cap pairs per
  // route are few in practice; singletons trivially so). Class ids are
  // assigned in (route key, first-member) order -- deterministic, and
  // identical across fill granularities and thread counts.
  n_classes_ = 0;
  cls_weight_.clear();
  cls_cap_.clear();
  cls_has_cap_.clear();
  cls_rate_.clear();
  cls_count_.clear();
  cls_path_begin_.clear();
  cls_path_end_.clear();
  cls_rank_.clear();
  class_of_slot_.resize(af_.size());
  comp_rank_.resize(comp_start_.size());
  for (std::size_t i = 0; i < fill_comps_.size(); ++i) {
    comp_rank_[fill_comps_[i]] = static_cast<std::uint32_t>(i);
  }
  const std::size_t buckets = route_start_.size() - 1;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::uint32_t bucket_class_begin = n_classes_;
    for (std::uint32_t pos = route_start_[b]; pos < route_start_[b + 1];
         ++pos) {
      const std::uint32_t s = route_order_[pos];
      const ActiveFlow& a = af_[s];
      const bool has_cap = a.flow->rate_cap.has_value();
      const double cap = has_cap ? *a.flow->rate_cap : 0.0;
      std::uint32_t k = kInvalidIndex;
      for (std::uint32_t kk = bucket_class_begin; kk < n_classes_; ++kk) {
        if (cls_weight_[kk] == a.weight && cls_has_cap_[kk] == has_cap &&
            (!has_cap || cls_cap_[kk] == cap)) {
          k = kk;
          break;
        }
      }
      if (k == kInvalidIndex) {
        k = n_classes_++;
        cls_weight_.push_back(a.weight);
        cls_cap_.push_back(cap);
        cls_has_cap_.push_back(has_cap ? 1 : 0);
        cls_rate_.push_back(0.0);
        cls_count_.push_back(0);
        cls_path_begin_.push_back(a.path_begin);
        cls_path_end_.push_back(a.path_end);
        cls_rank_.push_back(comp_rank_[comp_of_[s]]);
      }
#ifndef NDEBUG
      // Contract check: equal RouteId implies bitwise-equal link sequence.
      // A violation means someone rewrote Flow::path without re-interning
      // (Simulator::resume_flow / reroute_flow are the sanctioned paths).
      assert(a.path_end - a.path_begin ==
                 cls_path_end_[k] - cls_path_begin_[k] &&
             "Flow::route out of sync with Flow::path");
      for (std::uint32_t j = 0; j < a.path_end - a.path_begin; ++j) {
        assert(path_flat_[a.path_begin + j] ==
                   path_flat_[cls_path_begin_[k] + j] &&
               "Flow::route out of sync with Flow::path");
      }
#endif
      ++cls_count_[k];
      class_of_slot_[s] = k;
    }
  }

  // Classes bucketed by fill rank (stable: preserves class-id order within
  // each component), then member slots bucketed by class (stable: input is
  // rank-major slot-ascending, so each class's member run is ascending).
  bucket_scatter(
      n_classes_, fill_comps_.size(),
      [&](std::size_t k) { return cls_rank_[k]; },
      [](std::size_t k) { return static_cast<std::uint32_t>(k); },
      rank_class_start_, rank_class_cursor_, rank_classes_);
  bucket_scatter(
      m, n_classes_,
      [&](std::size_t i) { return class_of_slot_[dirty_slots_[i]]; },
      [&](std::size_t i) { return dirty_slots_[i]; }, class_member_start_,
      class_member_cursor_, class_members_);

  // Deduped per-component link list, in class-unit order: the single
  // `remaining_capacity -= delta * unfrozen_weight` sweep both fills run
  // per round walks exactly these links. The `listed` marker needs no
  // per-component reset -- components are link-disjoint and begin_pass()
  // zeroed it.
  comp_links_.clear();
  rank_link_start_.clear();
  for (std::size_t r = 0; r < fill_comps_.size(); ++r) {
    rank_link_start_.push_back(static_cast<std::uint32_t>(comp_links_.size()));
    for (std::uint32_t ki = rank_class_start_[r];
         ki < rank_class_start_[r + 1]; ++ki) {
      const std::uint32_t k = rank_classes_[ki];
      for (std::uint32_t p = cls_path_begin_[k]; p < cls_path_end_[k]; ++p) {
        LinkLoad& ll = links_.at(LinkId{path_flat_[p]});
        if (ll.listed == 0) {
          ll.listed = 1;
          comp_links_.push_back(path_flat_[p]);
        }
      }
    }
  }
  rank_link_start_.push_back(static_cast<std::uint32_t>(comp_links_.size()));

  if (fill_ == FillMode::kPerFlow) member_rate_.resize(af_.size());
}

// Both fills below are the *same* canonical progressive filling in
// grouping-invariant form (DESIGN.md §11): per round,
//   1. delta = min over unfrozen units of per-route-link rem/uw and the
//      cap headroom (cap - rate) / w  -- min is exact, so evaluating a
//      shared route's links once per class or once per member gives the
//      bitwise-same delta;
//   2. every unfrozen unit's rate += w * delta -- class members share the
//      identical accumulation history, so one class-level add stands for
//      all of them;
//   3. every component link's rem -= delta * uw, once per link per round
//      (links whose flows are all frozen have uw == +-0.0 and the subtract
//      is an exact no-op);
//   4. freeze pass in unit order: cap-clamp or any route link rem <= eps;
//      a frozen unit retires weight w from each route link once per member
//      (the class repeats the subtraction count times -- the identical
//      per-link value sequence as consecutive per-flow members).
// Each round freezes at least one unit or saturates at least one link, so
// the loop terminates in O(units + links) rounds. Components are
// link-disjoint by construction, so concurrent fills of distinct
// components are race-free (the mutable working set `fs` is
// thread-confined per participant).
void RateAllocator::fill_component_class(std::size_t rank, FillScratch& fs) {
  std::vector<std::uint32_t>& unfrozen_ = fs.unfrozen;
  std::vector<std::uint32_t>& next_ = fs.next;
  unfrozen_.assign(rank_classes_.begin() + rank_class_start_[rank],
                   rank_classes_.begin() + rank_class_start_[rank + 1]);
  const std::uint32_t link_begin = rank_link_start_[rank];
  const std::uint32_t link_end = rank_link_start_[rank + 1];
  while (!unfrozen_.empty()) {
    double delta = std::numeric_limits<double>::infinity();
    for (const std::uint32_t k : unfrozen_) {
      for (std::uint32_t p = cls_path_begin_[k]; p < cls_path_end_[k]; ++p) {
        const LinkLoad& ll = links_.at(LinkId{path_flat_[p]});
        assert(ll.unfrozen_weight > 0.0);
        delta = std::min(delta, ll.remaining_capacity / ll.unfrozen_weight);
      }
      if (cls_has_cap_[k]) {
        delta = std::min(delta, (cls_cap_[k] - cls_rate_[k]) / cls_weight_[k]);
      }
    }
    if (!std::isfinite(delta)) break;  // defensive: no constraint found
    delta = std::max(delta, 0.0);

    for (const std::uint32_t k : unfrozen_) {
      cls_rate_[k] += cls_weight_[k] * delta;
    }
    for (std::uint32_t li = link_begin; li < link_end; ++li) {
      LinkLoad& ll = links_.at(LinkId{comp_links_[li]});
      ll.remaining_capacity -= delta * ll.unfrozen_weight;
    }
    // Freezing pass (separate from the increment so all link updates land
    // before saturation checks).
    constexpr double kEps = 1e-12;
    next_.clear();
    for (const std::uint32_t k : unfrozen_) {
      bool frozen = false;
      if (cls_has_cap_[k] && cls_rate_[k] >= cls_cap_[k] - kEps) {
        cls_rate_[k] = cls_cap_[k];
        frozen = true;
      } else {
        for (std::uint32_t p = cls_path_begin_[k]; p < cls_path_end_[k];
             ++p) {
          if (links_.at(LinkId{path_flat_[p]}).remaining_capacity <= kEps) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        // One weight retirement per member: the per-link subtraction
        // sequence (w, count times) is bitwise what consecutive per-flow
        // members would have produced.
        for (std::uint32_t rep = 0; rep < cls_count_[k]; ++rep) {
          for (std::uint32_t p = cls_path_begin_[k]; p < cls_path_end_[k];
               ++p) {
            links_.at(LinkId{path_flat_[p]}).unfrozen_weight -=
                cls_weight_[k];
          }
        }
      } else {
        next_.push_back(k);
      }
    }
    if (next_.size() == unfrozen_.size()) break;  // defensive: no progress
    unfrozen_.swap(next_);
  }
}

void RateAllocator::fill_component_perflow(std::size_t rank,
                                           FillScratch& fs) {
  // Reference granularity: units are individual members, enumerated in
  // class-major order (class id ascending, slot ascending within) -- the
  // exact order the class fill logically treats them in.
  std::vector<std::uint32_t>& unfrozen_ = fs.unfrozen;
  std::vector<std::uint32_t>& next_ = fs.next;
  unfrozen_.clear();
  for (std::uint32_t ki = rank_class_start_[rank];
       ki < rank_class_start_[rank + 1]; ++ki) {
    const std::uint32_t k = rank_classes_[ki];
    for (std::uint32_t mi = class_member_start_[k];
         mi < class_member_start_[k + 1]; ++mi) {
      const std::uint32_t s = class_members_[mi];
      member_rate_[s] = 0.0;
      unfrozen_.push_back(s);
    }
  }
  const std::uint32_t link_begin = rank_link_start_[rank];
  const std::uint32_t link_end = rank_link_start_[rank + 1];
  while (!unfrozen_.empty()) {
    double delta = std::numeric_limits<double>::infinity();
    for (const std::uint32_t s : unfrozen_) {
      const ActiveFlow& a = af_[s];
      for (std::uint32_t p = a.path_begin; p < a.path_end; ++p) {
        const LinkLoad& ll = links_.at(LinkId{path_flat_[p]});
        assert(ll.unfrozen_weight > 0.0);
        delta = std::min(delta, ll.remaining_capacity / ll.unfrozen_weight);
      }
      if (a.flow->rate_cap) {
        delta =
            std::min(delta, (*a.flow->rate_cap - member_rate_[s]) / a.weight);
      }
    }
    if (!std::isfinite(delta)) break;  // defensive: no constraint found
    delta = std::max(delta, 0.0);

    for (const std::uint32_t s : unfrozen_) {
      member_rate_[s] += af_[s].weight * delta;
    }
    for (std::uint32_t li = link_begin; li < link_end; ++li) {
      LinkLoad& ll = links_.at(LinkId{comp_links_[li]});
      ll.remaining_capacity -= delta * ll.unfrozen_weight;
    }
    constexpr double kEps = 1e-12;
    next_.clear();
    for (const std::uint32_t s : unfrozen_) {
      const ActiveFlow& a = af_[s];
      bool frozen = false;
      if (a.flow->rate_cap && member_rate_[s] >= *a.flow->rate_cap - kEps) {
        member_rate_[s] = *a.flow->rate_cap;
        frozen = true;
      } else {
        for (std::uint32_t p = a.path_begin; p < a.path_end; ++p) {
          if (links_.at(LinkId{path_flat_[p]}).remaining_capacity <= kEps) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        for (std::uint32_t p = a.path_begin; p < a.path_end; ++p) {
          links_.at(LinkId{path_flat_[p]}).unfrozen_weight -= a.weight;
        }
      } else {
        next_.push_back(s);
      }
    }
    if (next_.size() == unfrozen_.size()) break;  // defensive: no progress
    unfrozen_.swap(next_);
  }
}

bool RateAllocator::try_reuse(const std::uint32_t* members,
                              std::size_t count) {
  reuse_candidate_ = kInvalidIndex;
  // Resolve the candidate record through the first member's back-pointer.
  const std::uint64_t id0 = af_[members[0]].flow->id.value();
  if (id0 >= flow_rec_.size()) return false;
  const std::uint32_t rec_idx = flow_rec_[id0];
  if (rec_idx == kInvalidIndex) return false;
  CompRecord& rec = records_[rec_idx];
  if (rec.in_free_list || flow_rec_gen_[id0] != rec.gen) return false;
  if (rec.members.size() != count) return false;
  // Membership walk first: positional member identity. A record whose
  // member list still matches is an in-place refresh candidate even when
  // the value validation below fails -- steady control-plane churn rewrites
  // weights/caps of a stable component, and refreshing the existing slot
  // skips the back-pointer rewrite and the slab turnover entirely.
  for (std::size_t i = 0; i < count; ++i) {
    if (rec.members[i].id != af_[members[i]].flow->id.value()) return false;
  }
  reuse_candidate_ = rec_idx;
  if (rec.capacity_epoch != topo_->capacity_epoch()) return false;
  // Exact validation: bit-for-bit weight/cap values. Flow ids are never
  // reused and paths are immutable per id, so id equality implies path
  // equality; link capacities come from the topology and are pinned by the
  // capacity epoch above. Matching inputs therefore imply the cached rates
  // equal what water_fill would recompute, bit for bit. The control_dirty
  // check is a cheap setter-notification short-circuit; the value compare
  // is authoritative, so direct field writes are still detected.
  for (std::size_t i = 0; i < count; ++i) {
    const Flow* f = af_[members[i]].flow;
    const MemberSnap& m = rec.members[i];
    if (f->control_dirty) return false;
    if (m.weight != f->weight) return false;
    const bool has_cap = f->rate_cap.has_value();
    if (m.has_cap != has_cap) return false;
    if (has_cap && m.cap != *f->rate_cap) return false;
  }
  rec.last_used_pass = pass_;
  for (std::size_t i = 0; i < count; ++i) {
    af_[members[i]].flow->rate = rec.members[i].rate;
  }
  return true;
}

void RateAllocator::store_component(const std::uint32_t* members,
                                    std::size_t count) {
  if (reuse_candidate_ != kInvalidIndex) {
    // Same membership, new values: refresh the record in place. The slot,
    // its generation and every flow back-pointer stay valid.
    CompRecord& rec = records_[reuse_candidate_];
    rec.last_used_pass = pass_;
    rec.capacity_epoch = topo_->capacity_epoch();
    for (std::size_t i = 0; i < count; ++i) {
      const Flow* f = af_[members[i]].flow;
      MemberSnap& m = rec.members[i];
      m.weight = f->weight;
      m.has_cap = f->rate_cap.has_value();
      m.cap = f->rate_cap ? *f->rate_cap : 0.0;
      m.rate = f->rate;
    }
    return;
  }
  std::uint32_t idx;
  if (!record_free_.empty()) {
    idx = record_free_.back();
    record_free_.pop_back();
    records_[idx].in_free_list = false;
  } else {
    idx = static_cast<std::uint32_t>(records_.size());
    records_.emplace_back();
    // Keep the free list's capacity at least the slab size so the sweep
    // below never allocates.
    record_free_.reserve(records_.capacity());
  }
  CompRecord& rec = records_[idx];
  ++rec.gen;  // invalidates any stale references to a recycled slot
  rec.last_used_pass = pass_;
  rec.capacity_epoch = topo_->capacity_epoch();
  rec.members.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Flow* f = af_[members[i]].flow;
    const std::uint64_t id = f->id.value();
    MemberSnap& m = rec.members[i];
    m.id = id;
    m.weight = f->weight;
    m.has_cap = f->rate_cap.has_value();
    m.cap = f->rate_cap ? *f->rate_cap : 0.0;
    m.rate = f->rate;
    if (id >= flow_rec_.size()) {
      flow_rec_.resize(id + 1, kInvalidIndex);
      flow_rec_gen_.resize(id + 1, 0);
    }
    flow_rec_[id] = idx;
    flow_rec_gen_[id] = rec.gen;
  }
}

void RateAllocator::maybe_sweep_records(std::size_t live_components) {
  const std::size_t allocated = records_.size() - record_free_.size();
  if (allocated <= 2 * live_components + 64) return;
  // Mark-and-sweep: every live component touched its record this pass
  // (reuse or store), so anything with an older stamp is unreachable --
  // either superseded by a refill or orphaned by departed flows.
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    CompRecord& rec = records_[i];
    if (rec.in_free_list || rec.last_used_pass == pass_) continue;
    ++rec.gen;  // O(1) invalidation of all phantom flow references
    rec.in_free_list = true;
    record_free_.push_back(i);  // no alloc: capacity >= records_.capacity()
  }
}

}  // namespace echelon::netsim
