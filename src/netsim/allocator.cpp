#include "netsim/allocator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace echelon::netsim {

void RateAllocator::allocate(std::span<Flow*> flows) {
  // Per-round link state, stamped only for links that carry at least one
  // flow (lazy epoch reset; no per-pass map rebuild).
  links_.begin_pass(*topo_);
  unfrozen_.clear();
  path_flat_.clear();

  for (Flow* f : flows) {
    if (f->finished()) {
      f->rate = 0.0;
      continue;
    }
    f->rate = 0.0;
    // Zero-size or zero-cap flows are trivially done / stalled.
    if (f->rate_cap && *f->rate_cap <= 0.0) continue;
    // A flow with an empty path (src == dst, e.g. loopback shard exchange)
    // is never network-limited; grant its cap or effectively-infinite rate.
    if (f->path.empty()) {
      f->rate = f->rate_cap ? *f->rate_cap
                            : std::numeric_limits<double>::infinity();
      continue;
    }
    const auto begin = static_cast<std::uint32_t>(path_flat_.size());
    for (LinkId lid : f->path) {
      path_flat_.push_back(static_cast<std::uint32_t>(lid.value()));
      LinkLoad& ll = links_.touch(lid, LinkLoad{topo_->link(lid).capacity, 0.0});
      ll.unfrozen_weight += f->weight;
    }
    unfrozen_.push_back(
        ActiveFlow{f, begin, static_cast<std::uint32_t>(path_flat_.size())});
  }

  // Progressive filling: repeatedly raise the "water level" (rate per unit
  // weight) until a link saturates or a flow reaches its cap; freeze and
  // repeat. Each round freezes at least one flow or saturates at least one
  // link, so the loop terminates in O(flows + links) rounds.
  while (!unfrozen_.empty()) {
    // Max additional level permitted by each constraining link.
    double delta = std::numeric_limits<double>::infinity();
    for (const ActiveFlow& a : unfrozen_) {
      for (std::uint32_t p = a.path_begin; p < a.path_end; ++p) {
        const LinkLoad& ll = links_.at(LinkId{path_flat_[p]});
        assert(ll.unfrozen_weight > 0.0);
        delta = std::min(delta, ll.remaining_capacity / ll.unfrozen_weight);
      }
      if (a.flow->rate_cap) {
        delta = std::min(delta, (*a.flow->rate_cap - a.flow->rate) /
                                    a.flow->weight);
      }
    }
    if (!std::isfinite(delta)) break;  // defensive: no constraint found
    delta = std::max(delta, 0.0);

    // Apply the level increase and freeze exhausted flows.
    next_.clear();
    for (const ActiveFlow& a : unfrozen_) {
      const double inc = a.flow->weight * delta;
      a.flow->rate += inc;
      for (std::uint32_t p = a.path_begin; p < a.path_end; ++p) {
        links_.at(LinkId{path_flat_[p]}).remaining_capacity -= inc;
      }
    }
    // Freezing pass (separate from the increment so all link updates land
    // before saturation checks).
    constexpr double kEps = 1e-12;
    for (const ActiveFlow& a : unfrozen_) {
      Flow* f = a.flow;
      bool frozen = false;
      if (f->rate_cap && f->rate >= *f->rate_cap - kEps) {
        f->rate = *f->rate_cap;
        frozen = true;
      } else {
        for (std::uint32_t p = a.path_begin; p < a.path_end; ++p) {
          if (links_.at(LinkId{path_flat_[p]}).remaining_capacity <= kEps) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        for (std::uint32_t p = a.path_begin; p < a.path_end; ++p) {
          links_.at(LinkId{path_flat_[p]}).unfrozen_weight -= f->weight;
        }
      } else {
        next_.push_back(a);
      }
    }
    if (next_.size() == unfrozen_.size()) break;  // defensive: no progress
    unfrozen_.swap(next_);
  }
}

}  // namespace echelon::netsim
