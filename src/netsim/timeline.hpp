// ASCII Gantt rendering of per-worker computation timelines (the visual
// language of the paper's Figs. 1a and 2).
//
// A TimelineRecorder subscribes to a simulator's task stream; `render`
// quantizes the recorded executions into fixed-width slots and prints one
// row per worker, e.g.
//
//   w0 | F0 F1 F2 F3 .. .. b3 b3 b2 b2 |
//
// Cells show a short code derived from the task label (by default: the
// phase letter and trailing micro-batch/layer number); '..' marks idle.

#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "netsim/simulator.hpp"

namespace echelon::netsim {

class TimelineRecorder {
 public:
  struct Record {
    WorkerId worker;
    std::string label;
    SimTime start = 0.0;
    SimTime finish = 0.0;
  };

  // Subscribes to `sim`; the recorder must outlive the run.
  explicit TimelineRecorder(Simulator& sim);

  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }

  // Renders rows for every worker seen. `slot` is the time quantum per
  // cell; at most `max_slots` cells are drawn (the rest is elided).
  [[nodiscard]] std::string render(Duration slot,
                                   std::size_t max_slots = 100) const;

  // Derives a <=3-char cell code from a task label: the first letter of the
  // last alpha run plus the trailing number, e.g. "it0.f.s2.mb3" -> "f3".
  [[nodiscard]] static std::string cell_code(const std::string& label);

 private:
  std::vector<Record> records_;
  std::size_t worker_count_ = 0;
};

}  // namespace echelon::netsim
