// Shared types for collective-operation decomposition.
//
// Each collective primitive (ring all-reduce, all-gather, PS push/pull, ...)
// expands into a fragment of a netsim::Workflow: a `start` barrier, the
// constituent flows with their internal dependencies, and a `done` barrier.
// Callers chain fragments by adding edges to/from the barriers.

#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "netsim/workflow.hpp"

namespace echelon::collective {

struct CollectiveHandles {
  netsim::WfNodeId start = 0;  // released when the collective may begin
  netsim::WfNodeId done = 0;   // completes when every flow has finished
  std::vector<netsim::WfNodeId> flow_nodes;
};

// Tag stamped on every flow a collective emits, identifying the owning
// job and EchelonFlow group. `next_index` advances per emitted flow so each
// flow has a unique position within its group.
struct FlowTag {
  JobId job;
  EchelonFlowId group;
  int next_index = 0;

  // Base for FlowSpec::signature: flow j gets signature_base + j, giving a
  // structural identity stable across training iterations (generators derive
  // the base from job id and the EchelonFlow's ordinal *within* the
  // iteration). 0 disables signatures.
  std::uint64_t signature_base = 0;

  // Stamps job/group/index/signature onto a flow spec and advances the
  // index. Collective helpers call this once per emitted flow. The signature
  // doubles as the route hint: structurally identical flows across training
  // iterations get the same ECMP seed, so they intern to the same route and
  // collapse into one allocator equivalence class (signature 0 keeps the
  // historical per-flow-id seeding).
  void stamp(netsim::FlowSpec& spec) noexcept {
    spec.job = job;
    spec.group = group;
    spec.index_in_group = next_index;
    spec.signature =
        signature_base == 0
            ? 0
            : signature_base + static_cast<std::uint64_t>(next_index);
    spec.route_hint = spec.signature;
    ++next_index;
  }
};

}  // namespace echelon::collective
