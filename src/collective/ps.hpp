// Parameter-server communication: gradient push and model pull (Fig. 4b).

#pragma once

#include <string>
#include <vector>

#include "collective/group.hpp"

namespace echelon::collective {

// Every worker pushes `grad_bytes` of gradients to the PS node. The flows
// form one Coflow: aggregation proceeds only once all pushes land.
CollectiveHandles ps_push(netsim::Workflow& wf,
                          const std::vector<NodeId>& workers, NodeId ps,
                          Bytes grad_bytes, FlowTag& tag,
                          const std::string& label);

// The PS sends the updated model (`model_bytes`) to every worker; the next
// iteration starts only when all pulls complete -- another Coflow.
CollectiveHandles ps_pull(netsim::Workflow& wf,
                          const std::vector<NodeId>& workers, NodeId ps,
                          Bytes model_bytes, FlowTag& tag,
                          const std::string& label);

}  // namespace echelon::collective
