#include "collective/tree.hpp"

#include <cassert>

namespace echelon::collective {

namespace {

// For each non-root rank i, its binomial-tree parent clears i's lowest set
// bit; the edge is used in round log2(lowest set bit) counted from the
// root's perspective.
std::size_t lowest_bit(std::size_t i) { return i & (~i + 1); }

}  // namespace

CollectiveHandles tree_broadcast(netsim::Workflow& wf,
                                 const std::vector<NodeId>& hosts,
                                 Bytes data_bytes, FlowTag& tag,
                                 const std::string& label) {
  const std::size_t m = hosts.size();
  assert(m >= 2);
  CollectiveHandles h;
  h.start = wf.add_barrier(label + ".bc.start");
  h.done = wf.add_barrier(label + ".bc.done");

  // recv_node[i]: the flow that delivers the payload to rank i.
  std::vector<netsim::WfNodeId> recv_node(m);
  // Process ranks in increasing order: a rank's parent (i - lowbit(i)) is
  // always smaller, so its delivering flow exists by the time we need it.
  for (std::size_t i = 1; i < m; ++i) {
    const std::size_t parent = i - lowest_bit(i);
    netsim::FlowSpec spec{.src = hosts[parent],
                          .dst = hosts[i],
                          .size = data_bytes,
                          .label = label + ".bc.n" + std::to_string(i)};
    tag.stamp(spec);
    recv_node[i] = wf.add_flow(std::move(spec));
    if (parent == 0) {
      wf.add_dep(h.start, recv_node[i]);
    } else {
      wf.add_dep(recv_node[parent], recv_node[i]);
    }
    wf.add_dep(recv_node[i], h.done);
    h.flow_nodes.push_back(recv_node[i]);
  }
  return h;
}

CollectiveHandles tree_reduce(netsim::Workflow& wf,
                              const std::vector<NodeId>& hosts,
                              Bytes data_bytes, FlowTag& tag,
                              const std::string& label) {
  const std::size_t m = hosts.size();
  assert(m >= 2);
  CollectiveHandles h;
  h.start = wf.add_barrier(label + ".rd.start");
  h.done = wf.add_barrier(label + ".rd.done");

  // Mirror of broadcast: rank i sends its (partially reduced) payload to
  // its parent, after receiving from all of its own children. Children of i
  // are i + 2^k for 2^k < lowbit(i) (or < m for the root).
  std::vector<netsim::WfNodeId> send_node(m);
  for (std::size_t i = m; i-- > 1;) {
    const std::size_t parent = i - lowest_bit(i);
    netsim::FlowSpec spec{.src = hosts[i],
                          .dst = hosts[parent],
                          .size = data_bytes,
                          .label = label + ".rd.n" + std::to_string(i)};
    tag.stamp(spec);
    send_node[i] = wf.add_flow(std::move(spec));
    wf.add_dep(h.start, send_node[i]);
    wf.add_dep(send_node[i], h.done);
    h.flow_nodes.push_back(send_node[i]);
  }
  // Dependencies: i's send waits for every child's send (data to reduce).
  for (std::size_t i = 1; i < m; ++i) {
    const std::size_t parent = i - lowest_bit(i);
    if (parent != 0) wf.add_dep(send_node[i], send_node[parent]);
  }
  return h;
}

}  // namespace echelon::collective
