#include "collective/ps.hpp"

#include <cassert>

namespace echelon::collective {

namespace {

CollectiveHandles star(netsim::Workflow& wf,
                       const std::vector<NodeId>& workers, NodeId hub,
                       Bytes bytes, bool to_hub, FlowTag& tag,
                       const std::string& label) {
  assert(!workers.empty());
  CollectiveHandles h;
  h.start = wf.add_barrier(label + ".start");
  h.done = wf.add_barrier(label + ".done");
  for (std::size_t i = 0; i < workers.size(); ++i) {
    netsim::FlowSpec spec{
        .src = to_hub ? workers[i] : hub,
        .dst = to_hub ? hub : workers[i],
        .size = bytes,
        .label = label + ".n" + std::to_string(i)};
    tag.stamp(spec);
    const netsim::WfNodeId fn = wf.add_flow(std::move(spec));
    wf.add_dep(h.start, fn);
    wf.add_dep(fn, h.done);
    h.flow_nodes.push_back(fn);
  }
  return h;
}

}  // namespace

CollectiveHandles ps_push(netsim::Workflow& wf,
                          const std::vector<NodeId>& workers, NodeId ps,
                          Bytes grad_bytes, FlowTag& tag,
                          const std::string& label) {
  return star(wf, workers, ps, grad_bytes, /*to_hub=*/true, tag,
              label + ".push");
}

CollectiveHandles ps_pull(netsim::Workflow& wf,
                          const std::vector<NodeId>& workers, NodeId ps,
                          Bytes model_bytes, FlowTag& tag,
                          const std::string& label) {
  return star(wf, workers, ps, model_bytes, /*to_hub=*/false, tag,
              label + ".pull");
}

}  // namespace echelon::collective
