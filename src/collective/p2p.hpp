// Point-to-point transfer (pipeline-parallel activation/gradient exchange)
// and all-to-all (expert-parallel style shuffles; also a direct model of the
// paper's "all-to-all flows in each all-reduce" view for TP).

#pragma once

#include <string>
#include <vector>

#include "collective/group.hpp"

namespace echelon::collective {

// Single src -> dst transfer wrapped in the standard handle shape.
CollectiveHandles p2p(netsim::Workflow& wf, NodeId src, NodeId dst,
                      Bytes bytes, FlowTag& tag, const std::string& label);

// Every ordered pair (i, j), i != j, exchanges `bytes_per_pair`.
CollectiveHandles all_to_all(netsim::Workflow& wf,
                             const std::vector<NodeId>& hosts,
                             Bytes bytes_per_pair, FlowTag& tag,
                             const std::string& label);

}  // namespace echelon::collective
