#include "collective/ring.hpp"

#include <cassert>

namespace echelon::collective {

namespace {

// Shared skeleton for reduce-scatter and all-gather: both move chunks around
// the ring for m-1 steps with identical dependency structure.
CollectiveHandles ring_phase(netsim::Workflow& wf,
                             const std::vector<NodeId>& hosts,
                             Bytes data_bytes, FlowTag& tag,
                             const std::string& label) {
  const std::size_t m = hosts.size();
  assert(m >= 2 && "a ring needs at least two participants");

  CollectiveHandles h;
  h.start = wf.add_barrier(label + ".start");
  h.done = wf.add_barrier(label + ".done");

  const Bytes chunk = data_bytes / static_cast<double>(m);

  // prev_step[i] = flow node where host i was the *sender* in the previous
  // step; host i's send in the next step waits on the chunk it received,
  // i.e. on the previous send of its ring predecessor.
  std::vector<netsim::WfNodeId> prev_step(m);
  for (std::size_t step = 0; step + 1 < m; ++step) {
    std::vector<netsim::WfNodeId> cur(m);
    for (std::size_t i = 0; i < m; ++i) {
      const NodeId src = hosts[i];
      const NodeId dst = hosts[(i + 1) % m];
      netsim::FlowSpec spec{
          .src = src,
          .dst = dst,
          .size = chunk,
          .label = label + ".s" + std::to_string(step) + ".n" +
                   std::to_string(i)};
      tag.stamp(spec);
      cur[i] = wf.add_flow(std::move(spec));
      if (step == 0) {
        wf.add_dep(h.start, cur[i]);
      } else {
        wf.add_dep(prev_step[(i + m - 1) % m], cur[i]);
      }
      wf.add_dep(cur[i], h.done);
      h.flow_nodes.push_back(cur[i]);
    }
    prev_step.swap(cur);
  }
  return h;
}

}  // namespace

CollectiveHandles ring_reduce_scatter(netsim::Workflow& wf,
                                      const std::vector<NodeId>& hosts,
                                      Bytes data_bytes, FlowTag& tag,
                                      const std::string& label) {
  return ring_phase(wf, hosts, data_bytes, tag, label + ".rs");
}

CollectiveHandles ring_all_gather(netsim::Workflow& wf,
                                  const std::vector<NodeId>& hosts,
                                  Bytes data_bytes, FlowTag& tag,
                                  const std::string& label) {
  return ring_phase(wf, hosts, data_bytes, tag, label + ".ag");
}

CollectiveHandles ring_all_reduce(netsim::Workflow& wf,
                                  const std::vector<NodeId>& hosts,
                                  Bytes data_bytes, FlowTag& tag,
                                  const std::string& label) {
  CollectiveHandles rs = ring_reduce_scatter(wf, hosts, data_bytes, tag, label);
  CollectiveHandles ag = ring_all_gather(wf, hosts, data_bytes, tag, label);
  wf.add_dep(rs.done, ag.start);

  CollectiveHandles h;
  h.start = rs.start;
  h.done = ag.done;
  h.flow_nodes = std::move(rs.flow_nodes);
  h.flow_nodes.insert(h.flow_nodes.end(), ag.flow_nodes.begin(),
                      ag.flow_nodes.end());
  return h;
}

}  // namespace echelon::collective
