// Recursive halving-doubling collectives (the MPI "Rabenseifner" family).
//
// For power-of-two rank counts these run in log2(m) rounds instead of the
// ring's m-1 steps, trading step count for larger per-step transfers:
//   * reduce-scatter by recursive halving: round k exchanges data/2^(k+1)
//     with the partner at distance m/2^(k+1).
//   * all-gather by recursive doubling: round k exchanges data*2^k/m with
//     the partner at distance 2^k.
// Total bytes per rank match the ring ((m-1)/m * data per phase); the flow
// *structure* differs, which is exactly what scheduler comparisons across
// backends need.

#pragma once

#include <string>
#include <vector>

#include "collective/group.hpp"

namespace echelon::collective {

// Preconditions: hosts.size() is a power of two >= 2.
CollectiveHandles hd_reduce_scatter(netsim::Workflow& wf,
                                    const std::vector<NodeId>& hosts,
                                    Bytes data_bytes, FlowTag& tag,
                                    const std::string& label);

CollectiveHandles hd_all_gather(netsim::Workflow& wf,
                                const std::vector<NodeId>& hosts,
                                Bytes data_bytes, FlowTag& tag,
                                const std::string& label);

// Halving-doubling all-reduce: reduce-scatter then all-gather, 2*log2(m)
// rounds.
CollectiveHandles hd_all_reduce(netsim::Workflow& wf,
                                const std::vector<NodeId>& hosts,
                                Bytes data_bytes, FlowTag& tag,
                                const std::string& label);

[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n >= 1 && (n & (n - 1)) == 0;
}

}  // namespace echelon::collective
