// Ring collectives: reduce-scatter, all-gather, all-reduce.
//
// Faithful to the MPI/NCCL ring algorithm the paper describes (§2.1): for an
// m-worker ring each operation has m-1 steps, each step carrying m
// concurrent transfers of `data_bytes / m` along the ring. A node can only
// forward a chunk in step s+1 after receiving it in step s, so flow
// (s+1, sender i) depends on flow (s, sender i-1 mod m).

#pragma once

#include <string>
#include <vector>

#include "collective/group.hpp"

namespace echelon::collective {

// Reduce-scatter over `hosts` (ring order = vector order), reducing
// `data_bytes` of gradient state. Emits (m-1)*m flows of size data_bytes/m.
CollectiveHandles ring_reduce_scatter(netsim::Workflow& wf,
                                      const std::vector<NodeId>& hosts,
                                      Bytes data_bytes, FlowTag& tag,
                                      const std::string& label);

// All-gather: identical flow structure, gathering instead of reducing.
CollectiveHandles ring_all_gather(netsim::Workflow& wf,
                                  const std::vector<NodeId>& hosts,
                                  Bytes data_bytes, FlowTag& tag,
                                  const std::string& label);

// All-reduce = reduce-scatter followed by all-gather (2(m-1) steps).
CollectiveHandles ring_all_reduce(netsim::Workflow& wf,
                                  const std::vector<NodeId>& hosts,
                                  Bytes data_bytes, FlowTag& tag,
                                  const std::string& label);

}  // namespace echelon::collective
