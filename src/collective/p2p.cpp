#include "collective/p2p.hpp"

#include <cassert>

namespace echelon::collective {

CollectiveHandles p2p(netsim::Workflow& wf, NodeId src, NodeId dst,
                      Bytes bytes, FlowTag& tag, const std::string& label) {
  CollectiveHandles h;
  h.start = wf.add_barrier(label + ".start");
  h.done = wf.add_barrier(label + ".done");
  netsim::FlowSpec spec{.src = src, .dst = dst, .size = bytes, .label = label};
  tag.stamp(spec);
  const netsim::WfNodeId fn = wf.add_flow(std::move(spec));
  wf.add_dep(h.start, fn);
  wf.add_dep(fn, h.done);
  h.flow_nodes.push_back(fn);
  return h;
}

CollectiveHandles all_to_all(netsim::Workflow& wf,
                             const std::vector<NodeId>& hosts,
                             Bytes bytes_per_pair, FlowTag& tag,
                             const std::string& label) {
  assert(hosts.size() >= 2);
  CollectiveHandles h;
  h.start = wf.add_barrier(label + ".start");
  h.done = wf.add_barrier(label + ".done");
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      netsim::FlowSpec spec{
          .src = hosts[i],
          .dst = hosts[j],
          .size = bytes_per_pair,
          .label = label + "." + std::to_string(i) + ">" + std::to_string(j)};
      tag.stamp(spec);
      const netsim::WfNodeId fn = wf.add_flow(std::move(spec));
      wf.add_dep(h.start, fn);
      wf.add_dep(fn, h.done);
      h.flow_nodes.push_back(fn);
    }
  }
  return h;
}

}  // namespace echelon::collective
