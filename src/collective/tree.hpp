// Binomial-tree collectives: broadcast and reduce.
//
// Used by PS-style model distribution at scale and by tree-mode NCCL.
// log2(m) rounds; in broadcast round k, every rank that already holds the
// data forwards the full payload to the rank at distance 2^k (reduce is the
// mirror image toward the root). Rank 0 is the root.

#pragma once

#include <string>
#include <vector>

#include "collective/group.hpp"

namespace echelon::collective {

// Root (hosts[0]) sends `data_bytes` to everyone via a binomial tree.
CollectiveHandles tree_broadcast(netsim::Workflow& wf,
                                 const std::vector<NodeId>& hosts,
                                 Bytes data_bytes, FlowTag& tag,
                                 const std::string& label);

// Everyone's `data_bytes` are reduced onto the root (hosts[0]).
CollectiveHandles tree_reduce(netsim::Workflow& wf,
                              const std::vector<NodeId>& hosts,
                              Bytes data_bytes, FlowTag& tag,
                              const std::string& label);

}  // namespace echelon::collective
