#include "collective/hd.hpp"

#include <cassert>

namespace echelon::collective {

namespace {

// Shared skeleton: `rounds` pairwise-exchange rounds; in round k, rank i
// exchanges `bytes(k)` with rank i XOR distance(k). The round-k+1 send of
// rank i depends on its round-k send and on the data it received in round k
// (the partner's round-k send).
template <typename DistanceFn, typename BytesFn>
CollectiveHandles hd_phase(netsim::Workflow& wf,
                           const std::vector<NodeId>& hosts, int rounds,
                           DistanceFn distance, BytesFn bytes, FlowTag& tag,
                           const std::string& label) {
  const std::size_t m = hosts.size();
  assert(is_power_of_two(m) && m >= 2 &&
         "halving-doubling needs a power-of-two rank count");

  CollectiveHandles h;
  h.start = wf.add_barrier(label + ".start");
  h.done = wf.add_barrier(label + ".done");

  std::vector<netsim::WfNodeId> prev(m);
  for (int k = 0; k < rounds; ++k) {
    const std::size_t dist = distance(k);
    std::vector<netsim::WfNodeId> cur(m);
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t partner = i ^ dist;
      netsim::FlowSpec spec{.src = hosts[i],
                            .dst = hosts[partner],
                            .size = bytes(k),
                            .label = label + ".r" + std::to_string(k) +
                                     ".n" + std::to_string(i)};
      tag.stamp(spec);
      cur[i] = wf.add_flow(std::move(spec));
      if (k == 0) {
        wf.add_dep(h.start, cur[i]);
      } else {
        wf.add_dep(prev[i], cur[i]);                       // own prior send
        wf.add_dep(prev[i ^ distance(k - 1)], cur[i]);     // prior round recv
      }
      wf.add_dep(cur[i], h.done);
      h.flow_nodes.push_back(cur[i]);
    }
    prev.swap(cur);
  }
  return h;
}

int log2_of(std::size_t m) {
  int r = 0;
  while ((std::size_t{1} << r) < m) ++r;
  return r;
}

}  // namespace

CollectiveHandles hd_reduce_scatter(netsim::Workflow& wf,
                                    const std::vector<NodeId>& hosts,
                                    Bytes data_bytes, FlowTag& tag,
                                    const std::string& label) {
  const std::size_t m = hosts.size();
  const int rounds = log2_of(m);
  return hd_phase(
      wf, hosts, rounds,
      [m](int k) { return m >> (k + 1); },                       // m/2, m/4, ..
      [data_bytes](int k) { return data_bytes / double(1ULL << (k + 1)); },
      tag, label + ".rs");
}

CollectiveHandles hd_all_gather(netsim::Workflow& wf,
                                const std::vector<NodeId>& hosts,
                                Bytes data_bytes, FlowTag& tag,
                                const std::string& label) {
  const std::size_t m = hosts.size();
  const int rounds = log2_of(m);
  return hd_phase(
      wf, hosts, rounds,
      [](int k) { return std::size_t{1} << k; },                 // 1, 2, 4, ..
      [data_bytes, m](int k) {
        return data_bytes * double(1ULL << k) / static_cast<double>(m);
      },
      tag, label + ".ag");
}

CollectiveHandles hd_all_reduce(netsim::Workflow& wf,
                                const std::vector<NodeId>& hosts,
                                Bytes data_bytes, FlowTag& tag,
                                const std::string& label) {
  CollectiveHandles rs = hd_reduce_scatter(wf, hosts, data_bytes, tag, label);
  CollectiveHandles ag = hd_all_gather(wf, hosts, data_bytes, tag, label);
  wf.add_dep(rs.done, ag.start);
  CollectiveHandles h;
  h.start = rs.start;
  h.done = ag.done;
  h.flow_nodes = std::move(rs.flow_nodes);
  h.flow_nodes.insert(h.flow_nodes.end(), ag.flow_nodes.begin(),
                      ag.flow_nodes.end());
  return h;
}

}  // namespace echelon::collective
