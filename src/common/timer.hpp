// Wall-clock timing for experiment and bench runners.
//
// ScopedTimer centralizes the steady_clock boilerplate that used to be
// copy-pasted at every `wall_ms` call site: construct it where timing should
// begin, read elapsed_ms() where it should end (or let the destructor write
// the out-param). Used by cluster::run_experiment and by the observability
// layer's run-summary gauges.

#pragma once

#include <chrono>

namespace echelon {

class ScopedTimer {
 public:
  // `out_ms` (optional) receives the elapsed milliseconds at destruction --
  // handy when the timed scope has several exits.
  explicit ScopedTimer(double* out_ms = nullptr) noexcept
      : out_ms_(out_ms), start_(Clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (out_ms_ != nullptr) *out_ms_ = elapsed_ms();
  }

  // Milliseconds since construction (monotonic clock).
  [[nodiscard]] double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  double* out_ms_;
  Clock::time_point start_;
};

}  // namespace echelon
