// Streaming and batch summary statistics for experiment reporting.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace echelon {

// Welford's online algorithm: numerically stable running mean/variance
// without storing samples. Used for hot-path metrics (per-flow rates).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch statistics with percentiles. Stores samples; use for per-experiment
// result vectors (job completion times, tardiness values), not hot paths.
class Samples {
 public:
  void add(double x) { data_.push_back(x); }
  void add_all(const std::vector<double>& xs) {
    data_.insert(data_.end(), xs.begin(), xs.end());
  }

  [[nodiscard]] std::size_t count() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double mean() const noexcept {
    if (data_.empty()) return 0.0;
    double s = 0.0;
    for (double x : data_) s += x;
    return s / static_cast<double>(data_.size());
  }

  [[nodiscard]] double sum() const noexcept {
    double s = 0.0;
    for (double x : data_) s += x;
    return s;
  }

  [[nodiscard]] double min() const noexcept {
    return data_.empty() ? 0.0 : *std::min_element(data_.begin(), data_.end());
  }

  [[nodiscard]] double max() const noexcept {
    return data_.empty() ? 0.0 : *std::max_element(data_.begin(), data_.end());
  }

  // Nearest-rank percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const {
    if (data_.empty()) return 0.0;
    std::vector<double> sorted = data_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }

  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }

  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

 private:
  std::vector<double> data_;
};

}  // namespace echelon
