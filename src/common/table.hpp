// Plain-text table rendering for benchmark and experiment output.
//
// Benchmarks must print the same rows/series the paper reports; this renderer
// produces aligned, pipe-delimited tables that are diffable and readable in a
// terminal log.

#pragma once

#include <cstddef>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace echelon {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  // Convenience: format a double with fixed precision.
  [[nodiscard]] static std::string num(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(os, headers_, widths);
    std::string sep = "|";
    for (std::size_t w : widths) sep += std::string(w + 2, '-') + "|";
    os << sep << '\n';
    for (const auto& row : rows_) print_row(os, row, widths);
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace echelon
