// Deterministic random number generation for workload synthesis.
//
// xoshiro256** (Blackman & Vigna) -- small, fast, and fully reproducible
// across platforms, unlike std::default_random_engine whose behaviour is
// implementation-defined. All distribution sampling is implemented here so a
// seed uniquely determines a generated trace on every toolchain.

#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace echelon {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless method is overkill here; modulo bias on a
    // 64-bit generator is negligible for workload synthesis.
    return n == 0 ? 0 : next_u64() % n;
  }

  // Exponential with the given rate (mean = 1/rate). Used for Poisson job
  // inter-arrival times.
  [[nodiscard]] double exponential(double rate) noexcept {
    double u = uniform();
    // Guard the log: uniform() can return exactly 0.
    if (u <= 0.0) u = 0x1.0p-53;
    return -std::log(u) / rate;
  }

  // Standard normal via Box-Muller (no state caching; simplicity over speed).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * z;
  }

  // Log-normal parameterized by the mean/stddev of the *underlying normal*.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  // Bounded Pareto on [lo, hi] with shape alpha; heavy-tailed flow sizes.
  [[nodiscard]] double bounded_pareto(double lo, double hi,
                                      double alpha) noexcept {
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  // Raw generator state, exposed so long-running services can checkpoint a
  // stream mid-flight and resume it bit-exactly (DESIGN.md §13). The state is
  // the full xoshiro256** word vector; restoring it reproduces the identical
  // draw sequence on every platform.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

 private:
  [[nodiscard]] static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace echelon
