// Epoch-stamped dense scratch containers for allocation-free hot paths.
//
// The scheduling/allocation pipeline runs on every flow arrival and
// departure, and used to rebuild hash maps (and pay their per-node
// allocations) on every pass. Entity ids in this codebase (LinkId, FlowId,
// ...) are dense vector indices, so per-pass associative state can live in
// flat arrays instead. The trick that makes flat arrays cheap is *lazy
// reset*: each slot carries the generation (epoch) it was last written in,
// and bumping a single counter invalidates the whole array in O(1) -- no
// O(N) clear, no allocation. Arenas grow to their high-water mark once and
// are reused forever after ("zero heap allocations in steady state").
//
// Three containers:
//   * EpochScratch<T>  -- dense array keyed by a small integer id, with a
//     touched-list so sparse passes can iterate exactly the slots they wrote.
//   * KeySlotMap       -- open-addressing map from an *arbitrary* 64-bit key
//     to a uint32 payload, for group keys that are not dense (e.g.
//     singleton coflow keys with the high bit set). Also epoch-cleared.
//   * WorkerScratch<T> -- one arena slot per pool participant for parallel
//     passes (DESIGN.md §10), cache-line aligned, with a per-worker pass
//     epoch and a debug-build owner-thread check so cross-thread arena
//     reuse fails loudly instead of corrupting silently.

#pragma once

#include <cassert>
#include <cstdint>
#include <thread>
#include <vector>

namespace echelon {

// Dense array of T indexed by a small integer id with O(1) logical reset.
// Usage per pass: begin_pass(), then touch()/at()/find(). Slots not touched
// since the last begin_pass() read as absent (find() == nullptr).
template <typename T>
class EpochScratch {
 public:
  // Grows the backing arrays; existing stamps and values are preserved, new
  // slots start absent. Never shrinks (arena semantics).
  void ensure_size(std::size_t n) {
    if (values_.size() < n) {
      values_.resize(n);
      stamps_.resize(n, 0);
    }
  }

  // Logically empties the scratch. O(1): bumps the epoch and resets the
  // touched-list cursor.
  void begin_pass() noexcept {
    ++epoch_;
    touched_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  [[nodiscard]] bool active(std::size_t i) const {
    assert(i < stamps_.size());
    return stamps_[i] == epoch_;
  }

  // Slot i, value-initialized (and recorded as touched) on first access in
  // the current pass.
  T& touch(std::size_t i) { return touch(i, T{}); }

  // Slot i, initialized to `init` on first access in the current pass.
  T& touch(std::size_t i, const T& init) {
    assert(i < values_.size());
    if (stamps_[i] != epoch_) {
      stamps_[i] = epoch_;
      values_[i] = init;
      touched_.push_back(static_cast<std::uint32_t>(i));
    }
    return values_[i];
  }

  // Slot i, which must have been touched this pass.
  [[nodiscard]] T& at(std::size_t i) {
    assert(active(i));
    return values_[i];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(active(i));
    return values_[i];
  }

  // Pointer to slot i if touched this pass, nullptr otherwise.
  [[nodiscard]] const T* find(std::size_t i) const {
    return i < values_.size() && stamps_[i] == epoch_ ? &values_[i] : nullptr;
  }

  // Indices touched this pass, in first-touch order.
  [[nodiscard]] const std::vector<std::uint32_t>& touched() const noexcept {
    return touched_;
  }

 private:
  std::vector<T> values_;
  std::vector<std::uint64_t> stamps_;  // slot epoch; 0 = never written
  std::vector<std::uint32_t> touched_;
  std::uint64_t epoch_ = 0;  // begin_pass() makes the first usable epoch 1
};

// Epoch-stamped open-addressing (linear probing) map from an arbitrary
// 64-bit key to a uint32 payload. begin_pass(expected) logically empties the
// table and guarantees load factor <= 1/2 for up to `expected` insertions;
// once the table has grown to its high-water capacity, passes are
// allocation-free.
class KeySlotMap {
 public:
  void begin_pass(std::size_t expected) {
    std::size_t want = 16;
    while (want < expected * 2) want <<= 1;
    if (keys_.size() < want) {
      keys_.assign(want, 0);
      vals_.assign(want, 0);
      stamps_.assign(want, 0);
      epoch_ = 0;
    }
    ++epoch_;
  }

  // Payload slot for `key`, inserting (zero-initialized) if absent this
  // pass. `inserted` reports whether the key was new.
  std::uint32_t& find_or_insert(std::uint64_t key, bool& inserted) {
    assert(!keys_.empty() && "begin_pass() before use");
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (true) {
      if (stamps_[i] != epoch_) {
        stamps_[i] = epoch_;
        keys_[i] = key;
        vals_[i] = 0;
        inserted = true;
        return vals_[i];
      }
      if (keys_[i] == key) {
        inserted = false;
        return vals_[i];
      }
      i = (i + 1) & mask;
    }
  }

  // Payload for `key` if present this pass, nullptr otherwise.
  [[nodiscard]] const std::uint32_t* find(std::uint64_t key) const {
    if (keys_.empty()) return nullptr;
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (stamps_[i] == epoch_) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask;
    }
    return nullptr;
  }

 private:
  // SplitMix64 finalizer: full-avalanche mix so sequential ids spread.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> vals_;
  std::vector<std::uint64_t> stamps_;
  std::uint64_t epoch_ = 0;
};

// One T per pool participant for parallel passes. The value slots persist
// across passes (arena semantics: a worker's vectors keep their high-water
// capacity), so steady-state parallel fills allocate nothing. Slots are
// cache-line aligned -- neighbouring workers' arenas never share a line.
//
// Thread confinement contract: within one pass (begin_pass .. the caller's
// post-join reads) slot w may be touched by exactly one thread. Debug
// builds enforce it: the first at(w) in a pass binds the slot to the
// calling thread, and any later at(w) from a different thread asserts --
// cross-thread arena reuse would otherwise corrupt both workers' state
// silently in release builds. After the parallel section has joined, the
// orchestrating thread reads results through read(w), which skips the
// owner binding (the join is the synchronization point).
template <typename T>
class WorkerScratch {
 public:
  // Starts a pass with `workers` usable slots, growing the slot array if
  // needed (existing values preserved -- arenas, not fresh state). Resets
  // the debug owner bindings.
  void begin_pass(unsigned workers) {
    if (slots_.size() < workers) slots_.resize(workers);
    ++epoch_;
  }

  // begin_pass plus value-assignment of every usable slot (for accumulator
  // scratch -- per-worker flags/sums -- where stale values would leak into
  // the merge). Assigning here, before any worker runs, does not bind
  // owners: binding happens on first at().
  void begin_pass(unsigned workers, const T& init) {
    begin_pass(workers);
    for (unsigned w = 0; w < workers; ++w) slots_[w].value = init;
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  // Slot `worker`, callable only from the one thread that owns it this pass
  // (debug-checked; see the confinement contract above).
  [[nodiscard]] T& at(unsigned worker) {
    assert(worker < slots_.size());
    Slot& s = slots_[worker];
#ifndef NDEBUG
    if (s.owner_epoch != epoch_) {
      s.owner_epoch = epoch_;
      s.owner = std::this_thread::get_id();
    }
    assert(s.owner == std::this_thread::get_id() &&
           "WorkerScratch slot touched from two threads in one pass");
#endif
    return s.value;
  }

  // Post-join read access for the orchestrating thread's merge. Does not
  // bind or check ownership -- only safe once the parallel section that
  // wrote the slot has been joined.
  [[nodiscard]] const T& read(unsigned worker) const {
    assert(worker < slots_.size());
    return slots_[worker].value;
  }

 private:
  struct alignas(64) Slot {
    T value{};
#ifndef NDEBUG
    std::uint64_t owner_epoch = 0;  // 0 = unbound (epoch_ starts at 1)
    std::thread::id owner{};
#endif
  };
  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 1;
};

}  // namespace echelon
