// Dense-index counting-sort scatter, shared by the allocator's bucketing
// passes (component members, dirty-slot route buckets, class-by-component
// and member-by-class partitions).
//
// The idiom appears wherever a pass needs "group these items by a small
// dense key, preserving input order within each group" without allocating:
// count per key, prefix-sum into start offsets, then cursor-scatter the
// items. It used to be hand-rolled at each site; this header is the single
// definition (ISSUE 7 cleanup). All buffers are caller-owned arenas --
// assign/resize only ever grow them to their high-water mark, so
// steady-state calls perform no heap allocations.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace echelon {

// Stable counting-sort scatter of `count` items into `buckets` groups.
//
//   key(i)  -- dense bucket key of item i, in [0, buckets)
//   item(i) -- the value to scatter (typically i itself, or a slot index)
//
// On return:
//   start  -- buckets+1 prefix offsets: group b occupies
//             out[start[b] .. start[b+1])
//   out    -- items grouped by key, input order preserved within each group
//   cursor -- scratch (same length as start); contents unspecified
//
// Cost: O(count + buckets), no allocations beyond arena growth.
template <typename KeyFn, typename ItemFn>
void bucket_scatter(std::size_t count, std::size_t buckets, KeyFn key,
                    ItemFn item, std::vector<std::uint32_t>& start,
                    std::vector<std::uint32_t>& cursor,
                    std::vector<std::uint32_t>& out) {
  start.assign(buckets + 1, 0);
  for (std::size_t i = 0; i < count; ++i) ++start[key(i) + 1];
  for (std::size_t b = 0; b < buckets; ++b) start[b + 1] += start[b];
  cursor.assign(start.begin(), start.end());
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[cursor[key(i)]++] = item(i);
  }
}

}  // namespace echelon
