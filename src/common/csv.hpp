// Minimal CSV emission for experiment results (plot-friendly output).
//
// Quotes fields only when needed (comma, quote, newline); doubles are
// written with full round-trip precision so downstream analysis is exact.

#pragma once

#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace echelon {

class Csv {
 public:
  explicit Csv(std::vector<std::string> header) : header_(std::move(header)) {}

  Csv& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  [[nodiscard]] static std::string num(double v) {
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
    return os.str();
  }

  void write(std::ostream& os) const {
    write_row(os, header_);
    for (const auto& row : rows_) write_row(os, row);
  }

  // Returns false when the file cannot be opened.
  [[nodiscard]] bool write_file(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    write(f);
    return f.good();
  }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  static void write_row(std::ostream& os, const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  }

  static std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace echelon
