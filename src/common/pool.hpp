// Shared work-stealing thread pool for intra-run parallelism
// (DESIGN.md §10).
//
// One pool per process (ThreadPool::shared()), persistent workers parked on
// a condition variable between jobs. run(n, max_workers, fn) invokes
// fn(worker, i) for every i in [0, n) exactly once:
//
//   * [0, n) is split into per-participant contiguous ranges, each guarded
//     by its own cache-line-padded atomic cursor. A participant exhausts its
//     own range first (sequential index order, warm caches), then *steals*
//     from the other ranges by advancing their cursors -- every index is
//     claimed through exactly one fetch_add, so no index runs twice and no
//     index is skipped, regardless of how threads race.
//   * The calling thread participates as worker 0, so a pool of P
//     participants dispatches onto P-1 spawned threads plus the caller --
//     run() never blocks the caller on an idle pool.
//   * Steady-state dispatch allocates nothing: the job is a function
//     pointer + context pointer, cursors and error slots are pre-sized to
//     the pool width at construction.
//
// Determinism: the pool provides *scheduling*, never *ordering*. Callers
// that need a deterministic result must make their per-index work writes
// disjoint (or thread-confined via WorkerScratch) and perform any
// order-sensitive merge after run() returns -- the pattern every user in
// this codebase follows (RateAllocator's ascending-component merge,
// run_sweep's pre-sized result slots).
//
// Nested parallelism (deadlock-free by construction): a run() issued from
// inside a pool task -- e.g. a Simulator parallel fill inside a run_sweep
// point -- is detected through a thread-local flag and executed inline on
// the calling thread, serially. Workers therefore never *wait* on other
// workers, so no cycle of waits can form. The non-nested entry additionally
// asserts that no job is already in flight (one orchestrating caller at a
// time; concurrent top-level run() calls from unrelated threads are a
// caller bug, not a supported mode).
//
// Exceptions: fn may throw. Every index is still attempted; after the join
// the exception thrown by the *lowest* failing index is rethrown on the
// caller -- the error a serial loop would have surfaced first (the
// semantics cluster::parallel_for_indexed has always promised). The inline
// serial and nested paths implement the identical contract.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace echelon {

class ThreadPool {
 public:
  // `participants` counts the caller: P participants = P-1 spawned worker
  // threads. 0 = one per hardware thread (at least 1).
  explicit ThreadPool(unsigned participants = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Maximum participants in one run() (spawned workers + the caller).
  [[nodiscard]] unsigned concurrency() const noexcept {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  // The process-wide pool. Sized to max(hardware_concurrency, 8) so thread
  // counts above the core count (the equivalence suite's 8-thread axis on
  // small CI boxes) still exercise real cross-thread execution -- results
  // are bit-identical at any width, small machines merely timeshare. Parked
  // workers cost nothing while unused.
  [[nodiscard]] static ThreadPool& shared();

  // True while the current thread is executing inside a run() task (either
  // a pool worker or the participating caller). run() from such a context
  // executes inline-serially -- see the nested-parallelism note above.
  [[nodiscard]] static bool in_parallel_region() noexcept;

  // Invokes fn(worker, i) for every i in [0, n) exactly once across up to
  // min(max_workers, concurrency(), n) participants (max_workers == 0 means
  // "all"). `worker` is a dense participant index in [0, participants);
  // callers use it to select thread-confined scratch (WorkerScratch).
  // Blocks until every index has run; rethrows the lowest-index exception.
  template <typename F>
  void run(std::size_t n, unsigned max_workers, F&& fn) {
    run_impl(
        n, max_workers,
        [](void* ctx, unsigned worker, std::size_t index) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(worker, index);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

 private:
  using TaskFn = void (*)(void* ctx, unsigned worker, std::size_t index);

  // Per-participant claim range. Padded to a cache line: cursors are the
  // only cross-thread-contended words in a job, and false sharing between
  // neighbours would serialize the claim loop.
  struct alignas(64) Range {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };
  struct WorkerError {
    std::exception_ptr ep;
    std::size_t index = std::numeric_limits<std::size_t>::max();
  };

  void run_impl(std::size_t n, unsigned max_workers, TaskFn fn, void* ctx);
  // The claim loop: own range first, then steal round-robin from self+1.
  void work(unsigned self) noexcept;
  void worker_main(unsigned self);

  std::vector<std::thread> threads_;
  // One per participant, sized once at construction (atomics are neither
  // movable nor copyable, so a plain array, not a vector).
  std::unique_ptr<Range[]> ranges_;
  std::vector<WorkerError> errors_;  // one per participant, pre-sized

  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t job_gen_ = 0;  // bumped per dispatched job
  unsigned unfinished_ = 0;    // spawned participants still in the job
  bool stop_ = false;
  // Current job; stable while any participant is inside work().
  TaskFn fn_ = nullptr;
  void* ctx_ = nullptr;
  unsigned width_ = 0;  // participants in the current job
};

}  // namespace echelon
