// Strong identifier types used across the EchelonFlow libraries.
//
// Every entity in the simulator (node, link, flow, job, ...) is referred to
// by a small integral id. Using a distinct C++ type per entity kind prevents
// accidentally passing, say, a FlowId where a NodeId is expected -- a class
// of bug that plain `int` ids invite (C++ Core Guidelines I.4: make
// interfaces precisely and strongly typed).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace echelon {

// A strongly-typed integral identifier. `Tag` is an empty struct that only
// serves to make different instantiations distinct types.
template <typename Tag>
class TaggedId {
 public:
  using value_type = std::uint64_t;

  // The default-constructed id is invalid; ids handed out by factories start
  // at 0 and grow monotonically.
  constexpr TaggedId() noexcept = default;
  constexpr explicit TaggedId(value_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }

  [[nodiscard]] static constexpr TaggedId invalid() noexcept {
    return TaggedId{};
  }

  friend constexpr bool operator==(TaggedId, TaggedId) noexcept = default;
  friend constexpr auto operator<=>(TaggedId, TaggedId) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value();
  }

 private:
  static constexpr value_type kInvalid =
      std::numeric_limits<value_type>::max();
  value_type value_ = kInvalid;
};

struct NodeTag {};
struct LinkTag {};
struct FlowTag {};
struct TaskTag {};
struct JobTag {};
struct EchelonFlowTag {};
struct CoflowTag {};
struct WorkerTag {};
struct RouteTag {};

using NodeId = TaggedId<NodeTag>;
using LinkId = TaggedId<LinkTag>;
using FlowId = TaggedId<FlowTag>;
using TaskId = TaggedId<TaskTag>;
using JobId = TaggedId<JobTag>;
using EchelonFlowId = TaggedId<EchelonFlowTag>;
using CoflowId = TaggedId<CoflowTag>;
using WorkerId = TaggedId<WorkerTag>;
// Dense index into a topology::RouteTable: one id per *distinct* routed
// path ever interned. Append-only -- a RouteId, once handed out, resolves
// to the same link sequence for the lifetime of the table.
using RouteId = TaggedId<RouteTag>;

// Monotonic id factory. Not thread-safe by design: the simulator is
// single-threaded and determinism matters more than concurrency here.
template <typename Id>
class IdAllocator {
 public:
  [[nodiscard]] Id next() noexcept { return Id{next_++}; }
  [[nodiscard]] typename Id::value_type count() const noexcept {
    return next_;
  }
  void reset() noexcept { next_ = 0; }

 private:
  typename Id::value_type next_ = 0;
};

}  // namespace echelon

namespace std {
template <typename Tag>
struct hash<echelon::TaggedId<Tag>> {
  size_t operator()(echelon::TaggedId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
