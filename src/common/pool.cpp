#include "common/pool.hpp"

#include <algorithm>
#include <cassert>

namespace echelon {

namespace {
// Set while the thread is inside a run() task (worker or participating
// caller). Nested run() calls observe it and execute inline-serially.
thread_local bool tl_in_pool_task = false;
}  // namespace

bool ThreadPool::in_parallel_region() noexcept { return tl_in_pool_task; }

ThreadPool::ThreadPool(unsigned participants) {
  if (participants == 0) {
    participants = std::max(1u, std::thread::hardware_concurrency());
  }
  ranges_ = std::make_unique<Range[]>(participants);
  errors_.resize(participants);
  threads_.reserve(participants - 1);
  for (unsigned w = 1; w < participants; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(
      std::max(8u, std::max(1u, std::thread::hardware_concurrency())));
  return pool;
}

void ThreadPool::work(unsigned self) noexcept {
  // Own range first (sequential order), then steal round-robin starting at
  // the right-hand neighbour. Every claim is a fetch_add on the owning
  // range's cursor, so each index is executed exactly once; the bounded
  // overshoot past `end` (at most one per visiting thief) is harmless.
  for (unsigned off = 0; off < width_; ++off) {
    Range& r = ranges_[(self + off) % width_];
    while (true) {
      const std::size_t i = r.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= r.end) break;
      try {
        fn_(ctx_, self, i);
      } catch (...) {
        WorkerError& e = errors_[self];
        if (i < e.index) {
          e.index = i;
          e.ep = std::current_exception();
        }
      }
    }
  }
}

void ThreadPool::worker_main(unsigned self) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_work_.wait(lk, [&] { return stop_ || job_gen_ != seen; });
      if (stop_) return;
      seen = job_gen_;
      if (self >= width_) continue;  // narrow job: not a participant
    }
    tl_in_pool_task = true;
    work(self);
    tl_in_pool_task = false;
    {
      std::lock_guard<std::mutex> lk(m_);
      --unfinished_;
    }
    cv_done_.notify_one();  // only the dispatching caller waits
  }
}

void ThreadPool::run_impl(std::size_t n, unsigned max_workers, TaskFn fn,
                          void* ctx) {
  if (n == 0) return;
  unsigned width = max_workers == 0 ? concurrency()
                                    : std::min(max_workers, concurrency());
  width = static_cast<unsigned>(std::min<std::size_t>(width, n));

  if (width <= 1 || tl_in_pool_task) {
    // Serial fast path and the nested case (a run() from inside a pool
    // task runs inline so workers never wait on workers -- deadlock-free by
    // construction). Same contract as the parallel path: every index is
    // attempted, lowest-index exception wins. Local error state, so a
    // nested inline loop cannot clobber the enclosing job's slots.
    std::exception_ptr ep;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(ctx, 0, i);
      } catch (...) {
        if (ep == nullptr) ep = std::current_exception();
      }
    }
    if (ep != nullptr) std::rethrow_exception(ep);
    return;
  }

  // Contiguous per-participant ranges; cursors published before the lock so
  // the mutex release/acquire pair orders them for every worker.
  for (unsigned w = 0; w < width; ++w) {
    ranges_[w].next.store(w * n / width, std::memory_order_relaxed);
    ranges_[w].end = (w + 1) * n / width;
    errors_[w] = WorkerError{};
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    assert(unfinished_ == 0 &&
           "ThreadPool::run: concurrent top-level dispatch (one "
           "orchestrating caller at a time; nested calls run inline)");
    fn_ = fn;
    ctx_ = ctx;
    width_ = width;
    unfinished_ = width - 1;
    ++job_gen_;
  }
  cv_work_.notify_all();

  // The caller participates as worker 0 (flag set so run() calls made from
  // inside fn on this thread also take the nested inline path).
  tl_in_pool_task = true;
  work(0);
  tl_in_pool_task = false;

  {
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [&] { return unfinished_ == 0; });
    fn_ = nullptr;
    ctx_ = nullptr;
  }

  // Lowest failing index across all participants, matching what a serial
  // loop would have thrown first.
  std::size_t best = std::numeric_limits<std::size_t>::max();
  std::exception_ptr ep;
  for (unsigned w = 0; w < width; ++w) {
    if (errors_[w].ep != nullptr && errors_[w].index < best) {
      best = errors_[w].index;
      ep = errors_[w].ep;
    }
  }
  if (ep != nullptr) std::rethrow_exception(ep);
}

}  // namespace echelon
