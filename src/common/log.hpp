// Minimal leveled logging.
//
// The simulator is deterministic and single-threaded; logging exists for
// debugging experiment runs, defaults to warnings-only, and is controlled
// globally. No allocation happens when a message is filtered out.

#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace echelon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_detail {
inline LogLevel& global_level() noexcept {
  static LogLevel level = LogLevel::kWarn;
  return level;
}
}  // namespace log_detail

inline void set_log_level(LogLevel level) noexcept {
  log_detail::global_level() = level;
}

[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return level >= log_detail::global_level();
}

// Streamed log statement that only evaluates its arguments when enabled:
//   ECHELON_LOG(kInfo) << "flow " << id << " finished at " << t;
class LogLine {
 public:
  explicit LogLine(LogLevel level, std::string_view tag) {
    os_ << '[' << tag << "] ";
    (void)level;
  }
  ~LogLine() { std::cerr << os_.str() << '\n'; }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  std::ostringstream os_;
};

namespace log_detail {
constexpr std::string_view tag_for(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace log_detail

#define ECHELON_LOG(level)                                            \
  if (!::echelon::log_enabled(::echelon::LogLevel::level)) {          \
  } else                                                              \
    ::echelon::LogLine(::echelon::LogLevel::level,                    \
                       ::echelon::log_detail::tag_for(                \
                           ::echelon::LogLevel::level))

}  // namespace echelon
