// Minimal leveled logging.
//
// The simulator itself is deterministic and single-threaded, but experiments
// run concurrently under cluster::run_sweep's thread pool -- so a log line
// must reach stderr as ONE write. LogLine assembles the complete line
// (tag, message, trailing newline) in its own buffer and emits it with a
// single unformatted std::cerr.write() in the destructor; concurrent lines
// may interleave with each other in *order* but never mid-line. Logging
// defaults to warnings-only and is controlled globally. No allocation or
// formatting happens when a message is filtered out (the ECHELON_LOG macro
// short-circuits before constructing the LogLine).

#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace echelon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_detail {
inline LogLevel& global_level() noexcept {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

constexpr std::string_view tag_for(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace log_detail

inline void set_log_level(LogLevel level) noexcept {
  log_detail::global_level() = level;
}

[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return level >= log_detail::global_level();
}

// Streamed log statement that only evaluates its arguments when enabled:
//   ECHELON_LOG(kInfo) << "flow " << id << " finished at " << t;
class LogLine {
 public:
  // The level determines the line's tag (it used to be ignored -- callers
  // passed a pre-computed tag alongside it); the macro below has already
  // established that the level is enabled.
  explicit LogLine(LogLevel level) {
    os_ << '[' << log_detail::tag_for(level) << "] ";
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  ~LogLine() {
    // Single write: append the newline to the buffered line first, then hand
    // the whole thing to cerr in one unformatted call. Two separate stream
    // operations (message, then '\n') interleave under run_sweep's pool.
    os_ << '\n';
    const std::string line = os_.str();
    std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
    std::cerr.flush();
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  std::ostringstream os_;
};

#define ECHELON_LOG(level)                                            \
  if (!::echelon::log_enabled(::echelon::LogLevel::level)) {          \
  } else                                                              \
    ::echelon::LogLine(::echelon::LogLevel::level)

}  // namespace echelon
