// Data-size and bandwidth units.
//
// Sizes are plain doubles in *bytes* and rates in *bytes per second*; these
// helpers keep unit conversions explicit and readable at call sites
// (`gbps(100)`, `mib(64)`), avoiding the classic bits-vs-bytes factor-of-8
// bug endemic to networking code.

#pragma once

namespace echelon {

using Bytes = double;          // data size in bytes
using BytesPerSec = double;    // bandwidth in bytes per second

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

// Bandwidths: network gear is marketed in bits per second.
[[nodiscard]] constexpr BytesPerSec gbps(double v) noexcept {
  return v * kGiga / 8.0;
}
[[nodiscard]] constexpr BytesPerSec mbps(double v) noexcept {
  return v * kMega / 8.0;
}

// Sizes.
[[nodiscard]] constexpr Bytes kib(double v) noexcept { return v * kKiB; }
[[nodiscard]] constexpr Bytes mib(double v) noexcept { return v * kMiB; }
[[nodiscard]] constexpr Bytes gib(double v) noexcept { return v * kGiB; }

// Back-conversions for reporting.
[[nodiscard]] constexpr double to_gbps(BytesPerSec v) noexcept {
  return v * 8.0 / kGiga;
}
[[nodiscard]] constexpr double to_mib(Bytes v) noexcept { return v / kMiB; }

}  // namespace echelon
