// Simulation time.
//
// Simulated time is a double measured in seconds. Flow-level simulation
// produces event times from divisions (remaining_bytes / rate), so exact
// integer arithmetic is impossible; instead we standardize the tolerance used
// when comparing times throughout the codebase.

#pragma once

#include <cmath>
#include <limits>

namespace echelon {

using SimTime = double;
using Duration = double;

inline constexpr SimTime kTimeInfinity =
    std::numeric_limits<double>::infinity();

// Tolerance for comparing simulation times. Event times are computed from
// chains of floating-point divisions; 1 ns of slack on second-scale values is
// far above accumulated error yet far below any modeled duration.
inline constexpr double kTimeEpsilon = 1e-9;

[[nodiscard]] inline bool time_eq(SimTime a, SimTime b) noexcept {
  if (std::isinf(a) || std::isinf(b)) return a == b;
  return std::fabs(a - b) <= kTimeEpsilon * std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
}

[[nodiscard]] inline bool time_lt(SimTime a, SimTime b) noexcept {
  return a < b && !time_eq(a, b);
}

[[nodiscard]] inline bool time_le(SimTime a, SimTime b) noexcept {
  return a < b || time_eq(a, b);
}

}  // namespace echelon
