// The EchelonFlow abstraction (paper Definitions 3.1-3.3).
//
// An EchelonFlow H = {f_0 .. f_{|H|-1}} is a set of flows whose ideal finish
// times D = {d_0 .. d_{|H|-1}} are related through an arrangement function of
// the reference time r (the start time of the head flow): d_j = r + offset_j.
//
// This class is the *runtime* object: it binds abstraction-level flow
// positions to simulator flows as they start, fixes the reference time when
// the head flow appears, exposes ideal finish times to schedulers, and
// accumulates tardiness (Eq. 1: t_f = e - d; Eq. 2: t_H = max_j (e_j - d_j)).

#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "echelon/arrangement.hpp"

namespace echelon::ef {

// Per-flow bookkeeping within an EchelonFlow.
struct MemberFlow {
  int index = 0;                       // j, position in the arrangement
  FlowId sim_flow;                     // simulator binding (invalid = not yet started)
  SimTime start_time = kTimeInfinity;  // s_j
  SimTime finish_time = kTimeInfinity; // e_j
  Bytes size = 0.0;

  [[nodiscard]] bool started() const noexcept {
    return start_time < kTimeInfinity;
  }
  [[nodiscard]] bool finished() const noexcept {
    return finish_time < kTimeInfinity;
  }
};

class EchelonFlow {
 public:
  EchelonFlow(EchelonFlowId id, JobId job, Arrangement arrangement,
              std::string label = {}, double weight = 1.0)
      : id_(id),
        job_(job),
        arrangement_(std::move(arrangement)),
        label_(std::move(label)),
        weight_(weight),
        members_(static_cast<std::size_t>(arrangement_.size())) {
    for (std::size_t j = 0; j < members_.size(); ++j) {
      members_[j].index = static_cast<int>(j);
    }
  }

  // Replaces the arrangement before any member has started -- used by the
  // profiling-based calibration path (the paper's "computation profiling")
  // to overwrite an analytic arrangement with measured offsets. The
  // cardinality must not change.
  void set_arrangement(Arrangement arrangement) {
    assert(started_ == 0 && "cannot recalibrate a live EchelonFlow");
    assert(arrangement.size() == arrangement_.size());
    arrangement_ = std::move(arrangement);
  }

  [[nodiscard]] EchelonFlowId id() const noexcept { return id_; }
  [[nodiscard]] JobId job() const noexcept { return job_; }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] double weight() const noexcept { return weight_; }
  [[nodiscard]] const Arrangement& arrangement() const noexcept {
    return arrangement_;
  }
  [[nodiscard]] int cardinality() const noexcept {
    return arrangement_.size();
  }
  [[nodiscard]] const std::vector<MemberFlow>& members() const noexcept {
    return members_;
  }

  // --- runtime binding -------------------------------------------------------

  // Records that flow `index` entered the network at `now` as simulator flow
  // `sim_flow` with `size` bytes. The first member to start fixes the
  // reference time: r = its start time minus its own offset, so that
  // d_head = r + offset_head = s_head (paper: d_0 = r = s_0 in the common
  // case where the head flow is member 0).
  void note_start(int index, FlowId sim_flow, Bytes size, SimTime now);

  // Records that flow `index` finished at `now`.
  void note_finish(int index, SimTime now);

  // --- queries ----------------------------------------------------------------

  [[nodiscard]] bool reference_known() const noexcept {
    return reference_time_.has_value();
  }
  [[nodiscard]] std::optional<SimTime> reference_time() const noexcept {
    return reference_time_;
  }

  // Ideal finish time d_j = r + offset_j. Unknown until the head flow starts.
  [[nodiscard]] std::optional<SimTime> ideal_finish(int index) const;

  // Tardiness of member j (Eq. 1), defined once it has finished.
  [[nodiscard]] std::optional<Duration> flow_tardiness(int index) const;

  // Running EchelonFlow tardiness (Eq. 2): max over *finished* members.
  // Equals the definitive t_H once complete().
  [[nodiscard]] Duration tardiness() const noexcept { return max_tardiness_; }

  [[nodiscard]] int started_count() const noexcept { return started_; }
  [[nodiscard]] int finished_count() const noexcept { return finished_; }
  [[nodiscard]] bool complete() const noexcept {
    return finished_ == arrangement_.size();
  }

  // Completion time of the last flow minus reference time -- the Coflow
  // completion metric, reported for Property-2 comparisons.
  [[nodiscard]] std::optional<Duration> coflow_completion_time() const;

 private:
  EchelonFlowId id_;
  JobId job_;
  Arrangement arrangement_;
  std::string label_;
  double weight_ = 1.0;

  std::vector<MemberFlow> members_;
  std::optional<SimTime> reference_time_;
  Duration max_tardiness_ = -kTimeInfinity;
  int started_ = 0;
  int finished_ = 0;
};

}  // namespace echelon::ef
