// Exhaustive and analytic reference schedulers for tiny single-link
// instances. Used to verify Property 1 (EchelonFlow scheduling minimizes
// completion times of popular DDLT paradigms) and to grade the MADD
// adaptation's heuristic quality (bench EXT-B).
//
// Model: one link of capacity `cap`; preemptive fluid service; flow j is
// released at r_j with s_j bytes and ideal finish time (deadline) d_j.
//
// * `simulate_priority` serves, at every instant, the released unfinished
//   flow that appears earliest in `order` at full capacity (strict
//   preemptive priority).
// * `simulate_edf` uses dynamic earliest-deadline-first priority -- the
//   classic optimal policy for minimizing maximum lateness with preemption
//   and release times on one machine (Horn 1974).
// * `exhaustive_best` tries every priority permutation and returns the one
//   minimizing a caller-supplied objective over the finish-time vector.
//   With <= 9 flows this is exact and fast.

#pragma once

#include <functional>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"

namespace echelon::ef {

struct MiniFlow {
  SimTime release = 0.0;
  Bytes size = 0.0;
  SimTime deadline = 0.0;  // ideal finish time d_j
};

// Finish time of every flow under strict preemptive priority `order`
// (order[0] = highest priority; must be a permutation of flow indices).
[[nodiscard]] std::vector<SimTime> simulate_priority(
    const std::vector<MiniFlow>& flows, const std::vector<int>& order,
    BytesPerSec cap);

// Finish times under preemptive EDF (ties by lower index).
[[nodiscard]] std::vector<SimTime> simulate_edf(
    const std::vector<MiniFlow>& flows, BytesPerSec cap);

// Max tardiness objective (Eq. 2) over a finish-time vector.
[[nodiscard]] double max_tardiness(const std::vector<MiniFlow>& flows,
                                   const std::vector<SimTime>& finish);

struct ExhaustiveResult {
  double objective = 0.0;
  std::vector<int> order;
  std::vector<SimTime> finish;
};

using Objective =
    std::function<double(const std::vector<SimTime>& finish_times)>;

// Minimizes `objective` over all priority permutations. Precondition:
// flows.size() <= 10 (factorial blow-up beyond that).
[[nodiscard]] ExhaustiveResult exhaustive_best(
    const std::vector<MiniFlow>& flows, BytesPerSec cap,
    const Objective& objective);

}  // namespace echelon::ef
