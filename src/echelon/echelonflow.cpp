#include "echelon/echelonflow.hpp"

#include <algorithm>
#include <cassert>

namespace echelon::ef {

void EchelonFlow::note_start(int index, FlowId sim_flow, Bytes size,
                             SimTime now) {
  assert(index >= 0 && index < arrangement_.size());
  MemberFlow& m = members_.at(static_cast<std::size_t>(index));
  assert(!m.started() && "member flow started twice");
  m.sim_flow = sim_flow;
  m.size = size;
  m.start_time = now;
  ++started_;
  if (!reference_time_) {
    // Fig. 6: the head flow (first to start) anchors the arrangement. All
    // later ideal finish times derive from r, even for flows that start late
    // -- their d_j may precede their own start time, which is exactly the
    // paper's "advance the ideal finish time to offset the delay".
    reference_time_ = now - arrangement_.offset(index);
  }
}

void EchelonFlow::note_finish(int index, SimTime now) {
  assert(index >= 0 && index < arrangement_.size());
  MemberFlow& m = members_.at(static_cast<std::size_t>(index));
  assert(m.started() && !m.finished());
  m.finish_time = now;
  ++finished_;
  if (const auto d = ideal_finish(index)) {
    max_tardiness_ = std::max(max_tardiness_, now - *d);
  }
}

std::optional<SimTime> EchelonFlow::ideal_finish(int index) const {
  if (!reference_time_) return std::nullopt;
  return *reference_time_ + arrangement_.offset(index);
}

std::optional<Duration> EchelonFlow::flow_tardiness(int index) const {
  const MemberFlow& m = members_.at(static_cast<std::size_t>(index));
  if (!m.finished()) return std::nullopt;
  const auto d = ideal_finish(index);
  if (!d) return std::nullopt;
  return m.finish_time - *d;
}

std::optional<Duration> EchelonFlow::coflow_completion_time() const {
  if (!complete() || !reference_time_) return std::nullopt;
  SimTime last = -kTimeInfinity;
  for (const MemberFlow& m : members_) last = std::max(last, m.finish_time);
  return last - *reference_time_;
}

}  // namespace echelon::ef
