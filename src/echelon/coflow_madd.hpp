// Coflow scheduling baseline: Varys-style SEBF + MADD (Chowdhury et al.,
// SIGCOMM'14), the algorithm the paper adapts in Property 4.
//
// * Inter-coflow: Smallest Effective Bottleneck First -- coflows are served
//   in ascending order of their standalone completion bound
//       Gamma = max_links (sum of remaining bytes crossing the link / cap).
// * Intra-coflow: Minimum Allocation for Desired Duration -- every flow of
//   the coflow is paced at remaining_j / Gamma so all flows finish together
//   exactly at the bottleneck's completion time (no bandwidth wasted on
//   flows that would otherwise finish early).
// * Optional work conservation: leftover capacity is granted to coflows in
//   SEBF order, scaled proportionally to remaining bytes so simultaneous
//   finishing is preserved.
//
// Flows are grouped by FlowSpec::group; ungrouped flows form singleton
// coflows. Applied to an EchelonFlow-compliant workload this treats every
// EchelonFlow as if it were a Coflow -- which is precisely the strawman the
// paper's Fig. 2 shows losing to fair sharing on pipeline parallelism.
//
// Hot-path data layout: grouping uses a two-pass counting scheme over an
// epoch-stamped key map plus a flat member arena (no std::map nodes, no
// per-pass allocations after warm-up); per-link load and residual capacity
// live in dense LinkId-indexed scratch (see DESIGN.md, "Hot-path data
// layout").

#pragma once

#include <cstdint>
#include <vector>

#include "common/scratch.hpp"
#include "echelon/linkcaps.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"
#include "topology/dense.hpp"

namespace echelon::ef {

struct CoflowMaddConfig {
  bool work_conserving = true;
};

class CoflowMaddScheduler final : public netsim::NetworkScheduler {
 public:
  explicit CoflowMaddScheduler(CoflowMaddConfig config = {})
      : config_(config) {}

  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;

  [[nodiscard]] std::string name() const override { return "coflow-madd"; }

 private:
  // A coflow as a [begin, end) range into the flat members_ arena.
  struct Grp {
    std::uint64_t key = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    double gamma_standalone = 0.0;
  };

  [[nodiscard]] double standalone_gamma(const topology::Topology& topo,
                                        const Grp& g);
  [[nodiscard]] double residual_gamma(const Grp& g);

  CoflowMaddConfig config_;

  // --- reusable per-pass arenas (allocation-free after warm-up) ---
  KeySlotMap key_slots_;
  std::vector<Grp> groups_;
  std::vector<netsim::Flow*> members_;  // flat, grouped by coflow
  std::vector<std::uint32_t> order_;    // SEBF rank order over groups_
  topology::LinkScratch<double> load_;
  detail::ResidualCaps caps_;
};

}  // namespace echelon::ef
