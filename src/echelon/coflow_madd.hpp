// Coflow scheduling baseline: Varys-style SEBF + MADD (Chowdhury et al.,
// SIGCOMM'14), the algorithm the paper adapts in Property 4.
//
// * Inter-coflow: Smallest Effective Bottleneck First -- coflows are served
//   in ascending order of their standalone completion bound
//       Gamma = max_links (sum of remaining bytes crossing the link / cap).
// * Intra-coflow: Minimum Allocation for Desired Duration -- every flow of
//   the coflow is paced at remaining_j / Gamma so all flows finish together
//   exactly at the bottleneck's completion time (no bandwidth wasted on
//   flows that would otherwise finish early).
// * Optional work conservation: leftover capacity is granted to coflows in
//   SEBF order, scaled proportionally to remaining bytes so simultaneous
//   finishing is preserved.
//
// Flows are grouped by FlowSpec::group; ungrouped flows form singleton
// coflows. Applied to an EchelonFlow-compliant workload this treats every
// EchelonFlow as if it were a Coflow -- which is precisely the strawman the
// paper's Fig. 2 shows losing to fair sharing on pipeline parallelism.

#pragma once

#include "echelon/linkcaps.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"

namespace echelon::ef {

struct CoflowMaddConfig {
  bool work_conserving = true;
};

class CoflowMaddScheduler final : public netsim::NetworkScheduler {
 public:
  explicit CoflowMaddScheduler(CoflowMaddConfig config = {})
      : config_(config) {}

  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;

  [[nodiscard]] std::string name() const override { return "coflow-madd"; }

 private:
  CoflowMaddConfig config_;
};

}  // namespace echelon::ef
