// Coflow scheduling baseline: Varys-style SEBF + MADD (Chowdhury et al.,
// SIGCOMM'14), the algorithm the paper adapts in Property 4.
//
// * Inter-coflow: Smallest Effective Bottleneck First -- coflows are served
//   in ascending order of their standalone completion bound
//       Gamma = max_links (sum of remaining bytes crossing the link / cap).
// * Intra-coflow: Minimum Allocation for Desired Duration -- every flow of
//   the coflow is paced at remaining_j / Gamma so all flows finish together
//   exactly at the bottleneck's completion time (no bandwidth wasted on
//   flows that would otherwise finish early).
// * Optional work conservation: leftover capacity is granted to coflows in
//   SEBF order, scaled proportionally to remaining bytes so simultaneous
//   finishing is preserved.
//
// Flows are grouped by FlowSpec::group; ungrouped flows form singleton
// coflows. Applied to an EchelonFlow-compliant workload this treats every
// EchelonFlow as if it were a Coflow -- which is precisely the strawman the
// paper's Fig. 2 shows losing to fair sharing on pipeline parallelism.
//
// Hot-path data layout: grouping uses a two-pass counting scheme over an
// epoch-stamped key map plus a flat member arena (no std::map nodes, no
// per-pass allocations after warm-up); per-link load and residual capacity
// live in dense LinkId-indexed scratch (see DESIGN.md, "Hot-path data
// layout").
//
// Incremental mode (DESIGN.md §12): coflows only couple through shared
// links, so a same-era pass partitions them into link-disjoint components
// (per-pass union-find over member paths) and re-ranks/re-fills exactly the
// components containing a dirty job, a coflow that lost a member, or a link
// released by a departure. Standalone gammas of clean co-component coflows
// come from an era-stamped cache (remaining bytes and capacities are
// bitwise unchanged within an era). SEBF's (gamma, key) comparator is a
// total order, so sorting the scheduled subset reproduces the full sort's
// relative order; untouched components keep their previous (identical)
// caps, and a pass with no marks at all is an exact no-op.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/scratch.hpp"
#include "echelon/linkcaps.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"
#include "topology/dense.hpp"

namespace echelon::ef {

struct CoflowMaddConfig {
  bool work_conserving = true;
};

class CoflowMaddScheduler final : public netsim::NetworkScheduler {
 public:
  explicit CoflowMaddScheduler(CoflowMaddConfig config = {})
      : config_(config) {}

  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;
  void on_flow_departure(netsim::Simulator& sim,
                         const netsim::Flow& flow) override;
  void mark_job_dirty(JobId job) override { dirty_.mark(job); }
  void mark_all_jobs_dirty() override { dirty_.mark_all(); }

  [[nodiscard]] std::string name() const override { return "coflow-madd"; }

 private:
  // A coflow as a [begin, end) range into the flat members_ arena.
  struct Grp {
    std::uint64_t key = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    double gamma_standalone = 0.0;
    bool pass_dirty = false;  // per-pass: membership/jobs changed
  };

  [[nodiscard]] double standalone_gamma(const topology::Topology& topo,
                                        const Grp& g);
  [[nodiscard]] double residual_gamma(const Grp& g);
  [[nodiscard]] std::uint32_t uf_find(std::uint32_t x) noexcept;

  CoflowMaddConfig config_;

  // --- reusable per-pass arenas (allocation-free after warm-up) ---
  KeySlotMap key_slots_;
  std::vector<Grp> groups_;
  std::vector<netsim::Flow*> members_;  // flat, grouped by coflow
  std::vector<std::uint32_t> order_;    // SEBF rank order over groups_
  topology::LinkScratch<double> load_;
  detail::ResidualCaps caps_;

  // --- incremental control plane (DESIGN.md §12) -----------------------------
  netsim::DirtyJobSet dirty_;
  std::vector<LinkId> released_links_;
  // Coflows that lost a member since the last pass: the survivors' gamma
  // changed even when none of *their* jobs carries a mark (multi-job
  // coflows). Departure hooks append; passes consume.
  std::vector<std::uint64_t> departed_keys_;
  // key -> standalone gamma, valid while `era` matches era_seq_. Entries are
  // erased on member departure; steady-state same-era passes only look up.
  struct GammaEntry {
    double gamma = 0.0;
    std::uint64_t era = 0;
  };
  std::unordered_map<std::uint64_t, GammaEntry> gamma_cache_;
  std::uint64_t era_seq_ = 0;
  std::uint64_t last_acc_gen_ = ~0ull;
  std::uint64_t last_cap_epoch_ = ~0ull;
  topology::LinkScratch<std::uint32_t> owner_scratch_;
  std::vector<std::uint32_t> uf_parent_;
  std::vector<std::uint8_t> root_dirty_;
};

}  // namespace echelon::ef
