// Shortest-Remaining-Processing-Time baseline (pFabric-style).
//
// The classic information-rich per-flow policy from the individual-flow
// scheduling literature the paper cites (§1: pFabric, PIAS): strict
// preemptive priority to the flow with the fewest remaining bytes,
// work-conserving water-fill below it. Application-agnostic -- it ignores
// groups and arrangements entirely -- so it is the natural "per-flow
// optimal, application-blind" baseline against the EchelonFlow family.

#pragma once

#include <vector>

#include "echelon/linkcaps.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"

namespace echelon::ef {

class SrptScheduler final : public netsim::NetworkScheduler {
 public:
  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;

  [[nodiscard]] std::string name() const override { return "srpt"; }

 private:
  // Reusable per-pass arenas (allocation-free after warm-up).
  std::vector<netsim::Flow*> order_;
  detail::ResidualCaps caps_;
};

}  // namespace echelon::ef
