// Shortest-Remaining-Processing-Time baseline (pFabric-style).
//
// The classic information-rich per-flow policy from the individual-flow
// scheduling literature the paper cites (§1: pFabric, PIAS): strict
// preemptive priority to the flow with the fewest remaining bytes,
// work-conserving water-fill below it. Application-agnostic -- it ignores
// groups and arrangements entirely -- so it is the natural "per-flow
// optimal, application-blind" baseline against the EchelonFlow family.

// Incremental mode (DESIGN.md §12): a flow's water-fill rate depends only
// on the flows it (transitively) shares links with, so a same-era pass
// partitions the routed flows into link-disjoint components via a per-pass
// union-find and re-fills exactly the components containing a dirty job or
// a link released by a departure. (remaining, id) is a total order, so
// sorting the scheduled subset reproduces the full sort's relative order,
// and untouched components keep their (provably identical) previous caps.
// Era changes (byte accounting or capacity movement) invalidate every
// remaining-ranked decision and fall back to the full pass.

#pragma once

#include <cstdint>
#include <vector>

#include "echelon/linkcaps.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"
#include "topology/dense.hpp"

namespace echelon::ef {

class SrptScheduler final : public netsim::NetworkScheduler {
 public:
  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;
  void on_flow_departure(netsim::Simulator& sim,
                         const netsim::Flow& flow) override;
  void mark_job_dirty(JobId job) override { dirty_.mark(job); }
  void mark_all_jobs_dirty() override { dirty_.mark_all(); }

  [[nodiscard]] std::string name() const override { return "srpt"; }

 private:
  [[nodiscard]] std::uint32_t uf_find(std::uint32_t x) noexcept;

  // Reusable per-pass arenas (allocation-free after warm-up).
  std::vector<netsim::Flow*> order_;
  detail::ResidualCaps caps_;

  // --- incremental control plane (DESIGN.md §12) -----------------------------
  netsim::DirtyJobSet dirty_;
  std::vector<LinkId> released_links_;
  std::uint64_t last_acc_gen_ = ~0ull;
  std::uint64_t last_cap_epoch_ = ~0ull;
  // Per-pass flow-component union-find (indices into routed_).
  std::vector<netsim::Flow*> routed_;
  topology::LinkScratch<std::uint32_t> owner_scratch_;
  std::vector<std::uint32_t> uf_parent_;
  std::vector<std::uint8_t> root_dirty_;
};

}  // namespace echelon::ef
