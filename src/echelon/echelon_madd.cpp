#include "echelon/echelon_madd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace echelon::ef {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint64_t kSingletonBase = 1ULL << 63;

}  // namespace

// (key, deadline, weight) a flow schedules under *right now*. Cheap: a
// couple of dense vector lookups into the registry. The cache stores the
// resolved triple per flow; control() re-resolves each pass to detect
// late registrations or re-calibrations and rebuilds when anything drifted.
EchelonMaddScheduler::Resolved EchelonMaddScheduler::resolve(
    const netsim::Flow& f) const {
  std::uint64_t key = kSingletonBase | f.id.value();
  SimTime deadline = f.start_time;  // fallback: tardiness == FCT
  double weight = 1.0;
  if (f.spec.group.valid() && registry_ != nullptr &&
      registry_->contains(f.spec.group)) {
    const EchelonFlow& ef = registry_->get(f.spec.group);
    if (const auto d = ef.ideal_finish(f.spec.index_in_group)) {
      key = f.spec.group.value();
      deadline = *d;
      weight = ef.weight();
    }
  }
  return Resolved{key, deadline, weight};
}

bool EchelonMaddScheduler::cache_valid(const netsim::Flow& f) const {
  const std::size_t idx = f.id.value();
  if (idx >= meta_.size() || meta_[idx].slot == kNoSlot) return false;
  const Resolved r = resolve(f);
  const FlowMeta& m = meta_[idx];
  return m.key == r.key && m.deadline == r.deadline && m.route == f.route;
}

void EchelonMaddScheduler::add_to_cache(const netsim::Flow& f) {
  const Resolved r = resolve(f);
  std::uint32_t slot;
  if (const auto it = slot_of_key_.find(r.key); it != slot_of_key_.end()) {
    slot = it->second;
  } else {
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
    GroupSlot& g = slots_[slot];
    g.key = r.key;
    g.members.clear();
    slot_of_key_.emplace(r.key, slot);
    groups_by_key_.insert(
        std::lower_bound(groups_by_key_.begin(), groups_by_key_.end(), r.key,
                         [this](std::uint32_t s, std::uint64_t k) {
                           return slots_[s].key < k;
                         }),
        slot);
  }
  GroupSlot& g = slots_[slot];
  g.weight = r.weight;
  // Sorted insertion keeps EDF order without a per-pass sort. upper_bound
  // with exact `<` places equal deadlines after existing ones, i.e. in
  // arrival order -- the same tie order the seed's stable_sort produced.
  const auto pos = std::upper_bound(
      g.members.begin(), g.members.end(), r.deadline,
      [](SimTime d, const CachedMember& m) { return d < m.deadline; });
  // The hook-time pointer is kept as the binding *hint* for foreign flows
  // (ids the simulator does not own); simulator-owned ids re-bind from
  // flows_ every pass, so the const_cast never outlives the flow.
  g.members.insert(pos,
                   CachedMember{f.id, r.deadline, f.spec.job.value(),
                                const_cast<netsim::Flow*>(&f)});
  if (!g.force_dirty) {
    g.force_dirty = true;
    ++forced_slots_;
  }
  const std::size_t idx = f.id.value();
  if (meta_.size() <= idx) meta_.resize(idx + 1);
  meta_[idx] = FlowMeta{slot, r.key, r.deadline, f.route};
  ++cached_members_;
}

void EchelonMaddScheduler::remove_from_cache(const netsim::Flow& f) {
  const std::size_t idx = f.id.value();
  if (idx >= meta_.size() || meta_[idx].slot == kNoSlot) return;
  const std::uint32_t slot = meta_[idx].slot;
  GroupSlot& g = slots_[slot];
  const auto it =
      std::find_if(g.members.begin(), g.members.end(),
                   [&](const CachedMember& m) { return m.id == f.id; });
  if (it != g.members.end()) {
    g.members.erase(it);  // preserves deadline order of the remainder
    --cached_members_;
  }
  if (g.members.empty()) {
    slot_of_key_.erase(g.key);
    const auto kit =
        std::find(groups_by_key_.begin(), groups_by_key_.end(), slot);
    if (kit != groups_by_key_.end()) groups_by_key_.erase(kit);
    if (g.force_dirty) {
      g.force_dirty = false;
      --forced_slots_;
    }
    free_slots_.push_back(slot);
  } else if (!g.force_dirty) {
    // A shrunken group must be re-ranked even if no surviving member's job
    // is marked (multi-job EchelonFlows: the departed member's job alone
    // carried the mark).
    g.force_dirty = true;
    ++forced_slots_;
  }
  meta_[idx].slot = kNoSlot;
}

void EchelonMaddScheduler::on_flow_arrival(netsim::Simulator&,
                                           const netsim::Flow& flow) {
  if (flow.path.empty()) {
    // Loopbacks are never grouped, but the scoped pass still needs to find
    // (and rewrite) the dirty ones without walking the whole active span.
    loopback_.push_back(LoopbackEntry{flow.id, flow.spec.job.value(),
                                      const_cast<netsim::Flow*>(&flow)});
    return;
  }
  const std::size_t idx = flow.id.value();
  if (idx < meta_.size() && meta_[idx].slot != kNoSlot) return;  // stale id
  add_to_cache(flow);
}

void EchelonMaddScheduler::on_flow_departure(netsim::Simulator&,
                                             const netsim::Flow& flow) {
  if (flow.path.empty()) {
    for (std::size_t i = 0; i < loopback_.size(); ++i) {
      if (loopback_[i].id == flow.id) {
        loopback_[i] = loopback_.back();
        loopback_.pop_back();
        break;
      }
    }
    return;
  }
  // The departing flow's capacity is freed: whichever component owns these
  // links at the next scoped pass gains backfill headroom and must be
  // re-filled, even if none of its own jobs are marked.
  for (LinkId lid : flow.path) released_links_.push_back(lid);
  remove_from_cache(flow);
}

void EchelonMaddScheduler::rebuild_cache(std::span<netsim::Flow*> active) {
  ++cache_rebuilds_;
  slot_of_key_.clear();
  groups_by_key_.clear();
  free_slots_.clear();
  forced_slots_ = 0;
  for (std::size_t i = slots_.size(); i-- > 0;) {
    slots_[i].members.clear();
    slots_[i].force_dirty = false;
    slots_[i].pass_dirty = false;
    free_slots_.push_back(static_cast<std::uint32_t>(i));
  }
  meta_.assign(meta_.size(), FlowMeta{});
  cached_members_ = 0;
  // Insertion in span order reproduces the seed's stable_sort tie order for
  // equal deadlines (the simulator hands flows in ascending-FlowId order).
  for (netsim::Flow* f : active) {
    if (f->path.empty()) continue;
    add_to_cache(*f);
  }
}

// Minimal uniform tardiness t such that, at time `now`, every member can
// finish by deadline + t under the given capacities. Per link, with members
// in deadline order, the earliest-deadline prefix condition gives
//   t >= prefix_bytes_k / cap - (d_k - now)   for every prefix k.
// Returns +inf when a needed link has no capacity. Per-link prefix state
// lives in the epoch-stamped tard_scratch_ arena (one sub-epoch per call).
double EchelonMaddScheduler::min_uniform_tardiness(
    const GroupSlot& g, SimTime now, const detail::ResidualCaps* residual,
    const topology::Topology& topo) {
  tard_scratch_.begin_pass(topo);
  double t = 0.0;
  for (const CachedMember& m : g.members) {  // already deadline-sorted
    for (LinkId lid : m.flow->path) {
      const bool first = !tard_scratch_.active(lid);
      PerLink& pl = tard_scratch_.touch(lid);
      if (first) {
        pl.cap = residual != nullptr ? residual->residual(lid)
                                     : topo.link(lid).capacity;
      }
      pl.prefix_bytes += m.flow->remaining;
      if (pl.cap <= 0.0) return kInf;
      t = std::max(t, pl.prefix_bytes / pl.cap - (m.deadline - now));
    }
  }
  return t;
}

void EchelonMaddScheduler::control(netsim::Simulator& sim,
                                   std::span<netsim::Flow*> active) {
  const topology::Topology& topo = sim.topology();
  const SimTime now = sim.now();
  ++stats_.passes;

  // Era classification: within one (accounting_generation, capacity_epoch)
  // pair every remaining-byte and capacity operand is bitwise unchanged, so
  // cached standalone tardiness / rank keys stay exact. Eras are only ever
  // *entered* through a full pass, which re-stamps every group.
  const std::uint64_t acc = sim.accounting_generation();
  const std::uint64_t cap = topo.capacity_epoch();
  const bool same_era = acc == last_acc_gen_ && cap == last_cap_epoch_;
  if (!same_era) {
    ++era_seq_;
    last_acc_gen_ = acc;
    last_cap_epoch_ = cap;
  }

  if (sched_mode_ == netsim::SchedMode::kIncremental && same_era) {
    if (dirty_.empty() && released_links_.empty() && forced_slots_ == 0) {
      // Exact skip: a full pass would push bitwise-identical values through
      // the compare-and-set setters on every flow.
      ++stats_.pass_skips;
      return;
    }
    if (!dirty_.all() && scoped_pass(sim, now, topo)) {
      ++stats_.scoped_passes;
      dirty_.clear();
      released_links_.clear();
      return;
    }
  }

  full_pass(active, now, topo);
  ++stats_.full_passes;
  dirty_.clear();
  released_links_.clear();
}

void EchelonMaddScheduler::full_pass(std::span<netsim::Flow*> active,
                                     SimTime now,
                                     const topology::Topology& topo) {
  // --- sync the persistent group cache with the active set -------------------
  // O(active) validation: stamp every active flow into the per-pass id->ptr
  // table and check its resolved (key, deadline) against the cache. Any
  // drift (hook-less caller, late registration, foreign flow ids) triggers
  // one full rebuild; steady-state passes validate and move on.
  flow_ptr_.begin_pass();
  bool consistent = true;
  std::size_t routed = 0;
  // Cache mutation and routing bookkeeping stay on the calling thread; only
  // the pure per-flow validity predicate may go wide below.
  const bool par_validate =
      pool_ != nullptr && active.size() >= kParallelValidateBatch;
  for (netsim::Flow* f : active) {
    if (f->path.empty()) {
      f->set_weight(1.0);
      f->clear_rate_cap();
      continue;
    }
    ++routed;
    const std::size_t idx = f->id.value();
    flow_ptr_.ensure_size(idx + 1);
    flow_ptr_.touch(idx) = f;
    if (!par_validate && consistent) consistent = cache_valid(*f);
  }
  if (par_validate) {
    // Component-local validation: each flow's check reads only that flow,
    // its meta_ row, and the (immutable-within-a-pass) registry. Per-worker
    // flags AND-merge to the same verdict the serial short-circuit walk
    // reaches, regardless of thread count or interleaving.
    const unsigned workers =
        std::min(par_threads_ == 0 ? pool_->concurrency() : par_threads_,
                 pool_->concurrency());
    valid_scratch_.begin_pass(workers, std::uint8_t{1});
    pool_->run(active.size(), par_threads_, [&](unsigned w, std::size_t i) {
      const netsim::Flow* f = active[i];
      if (f->path.empty()) return;
      if (!cache_valid(*f)) valid_scratch_.at(w) = 0;
    });
    for (unsigned w = 0; w < workers; ++w) {
      if (valid_scratch_.read(w) == 0) consistent = false;
    }
  }
  // Equal counts + (active ⊆ cache) ⇒ cache == active.
  if (!consistent || routed != cached_members_) rebuild_cache(active);

  // Re-bind simulator flow pointers: the owning flows_ vector may have been
  // reallocated since the previous pass, so the cache stores FlowIds and
  // refreshes pointers from the per-pass table.
  for (const std::uint32_t si : groups_by_key_) {
    for (CachedMember& m : slots_[si].members) {
      m.flow = flow_ptr_.at(m.id.value());
    }
  }

  // --- rank groups by standalone achievable tardiness ------------------------
  // (the Eq. 2 metric, Property 4's SEBF analog)
  order_.assign(groups_by_key_.begin(), groups_by_key_.end());
  for (const std::uint32_t si : order_) {
    GroupSlot& g = slots_[si];
    g.tardiness_standalone = min_uniform_tardiness(g, now, nullptr, topo);
    // Weighted ranking: tardiness scaled by 1/weight, so heavier
    // EchelonFlows sort as if they were further ahead (smallest-first) or
    // further behind (largest-first).
    g.rank_key = config_.use_weights && g.weight > 0.0
                     ? g.tardiness_standalone / g.weight
                     : g.tardiness_standalone;
    // A full pass recomputes everything, so every rank cache is current and
    // every pending membership change has been absorbed.
    g.rank_era = era_seq_;
    g.force_dirty = false;
    g.pass_dirty = false;
  }
  forced_slots_ = 0;
  const bool smallest_first =
      config_.ranking == InterRanking::kSmallestTardinessFirst;
  // Deterministic total order (rank key, then group key ascending) -- exactly
  // what the seed's stable_sort over the key-ascending std::map produced,
  // but via std::sort, which unlike stable_sort allocates no merge buffer.
  std::sort(order_.begin(), order_.end(),
            [this, smallest_first](std::uint32_t a, std::uint32_t b) {
              const GroupSlot& ga = slots_[a];
              const GroupSlot& gb = slots_[b];
              if (ga.rank_key != gb.rank_key) {
                return smallest_first ? ga.rank_key < gb.rank_key
                                      : ga.rank_key > gb.rank_key;
              }
              return ga.key < gb.key;
            });
  run_fill(now, topo);
}

// MADD fill over the groups in order_, in order, against freshly reset
// residuals. Shared by full_pass (order_ = all groups) and scoped_pass
// (order_ = the dirty link-disjoint components -- whose restriction keeps
// every per-link consume sequence identical to the full pass's).
//
// Pace member j to deadline d_j + t*:
// Groups are served in rank order against residual capacity. Within a
// group, members are processed one *deadline level* at a time (a level =
// maximal run of equal deadlines, i.e. one Coflow stage):
//   1. every member of the level gets its pacing rate remaining/horizon,
//   2. (work conservation) leftover capacity is immediately granted to the
//      level, scaled proportionally to remaining bytes so tied flows keep
//      finishing together.
// Backfilling level-by-level preserves EDF priority: the earliest deadline
// absorbs slack before any later deadline sees it, which on a single
// bottleneck reproduces full-rate EDF exactly. With a single level (Eq. 5
// arrangement) the pass degenerates to Coflow-MADD (Property 2).
void EchelonMaddScheduler::run_fill(SimTime now,
                                    const topology::Topology& topo) {
  caps_.reset(&topo);
  for (const std::uint32_t si : order_) {
    GroupSlot& g = slots_[si];
    const double tstar = min_uniform_tardiness(g, now, &caps_, topo);
    std::size_t i = 0;
    while (i < g.members.size()) {
      std::size_t j = i + 1;
      while (j < g.members.size() &&
             time_eq(g.members[j].deadline, g.members[i].deadline)) {
        ++j;
      }

      // 1. Pacing rates for level [i, j).
      for (std::size_t k = i; k < j; ++k) {
        netsim::Flow* f = g.members[k].flow;
        double rate = 0.0;
        if (std::isfinite(tstar)) {
          const double horizon = g.members[k].deadline + tstar - now;
          // horizon > 0 by construction (every member bounds t* through the
          // prefix ending at itself); guard against degenerate input anyway.
          rate = horizon > 0.0 ? f->remaining / horizon : kInf;
        }
        rate = std::min(rate, caps_.path_residual(*f));
        f->set_weight(1.0);
        f->set_rate_cap(rate);
        caps_.consume(*f, rate);
      }

      // 2. Work conservation for the level (per-link load accumulated in the
      // epoch-stamped load_scratch_ arena; lambda is a min-fold over the
      // touched links, so touch order does not affect the result).
      if (config_.work_conserving) {
        load_scratch_.begin_pass(topo);
        for (std::size_t k = i; k < j; ++k) {
          const netsim::Flow* f = g.members[k].flow;
          for (LinkId lid : f->path) load_scratch_.touch(lid) += f->remaining;
        }
        double lambda = kInf;
        for (const std::uint32_t li : load_scratch_.touched()) {
          const double bytes = load_scratch_.at(LinkId{li});
          if (bytes <= 0.0) continue;
          lambda = std::min(lambda, caps_.residual(LinkId{li}) / bytes);
        }
        if (std::isfinite(lambda) && lambda > 0.0) {
          for (std::size_t k = i; k < j; ++k) {
            netsim::Flow* f = g.members[k].flow;
            const double extra = f->remaining * lambda;
            if (extra <= 0.0) continue;
            f->set_rate_cap(*f->rate_cap + extra);
            caps_.consume(*f, extra);
          }
        }
      }
      i = j;
    }
  }

  // Final per-flow backfill (rank order, then EDF order within a group):
  // grants capacity the level-proportional pass could not use, e.g. when one
  // member of a level is blocked by a higher-ranked EchelonFlow while the
  // others have idle ports.
  if (config_.work_conserving) {
    for (const std::uint32_t si : order_) {
      for (CachedMember& m : slots_[si].members) {
        const double extra = caps_.path_residual(*m.flow);
        if (extra <= 0.0 || !std::isfinite(extra)) continue;
        m.flow->set_rate_cap(*m.flow->rate_cap + extra);
        caps_.consume(*m.flow, extra);
      }
    }
  }
}

std::uint32_t EchelonMaddScheduler::uf_find(std::uint32_t x) noexcept {
  while (uf_parent_[x] != x) {  // path halving
    uf_parent_[x] = uf_parent_[uf_parent_[x]];
    x = uf_parent_[x];
  }
  return x;
}

// Same-era dirty-component pass (DESIGN.md §12). Preconditions (checked by
// control()): kIncremental, hooks delivered, same era, not all-dirty.
// Returns false to fall back to the full validated pass on the two
// conditions it cannot handle exactly: a member whose resolved identity
// drifted (late registration -- the Registry escalates those to
// mark_all_jobs_dirty, so this is a defensive check) and a rerouted member
// whose *old* path was never interned.
bool EchelonMaddScheduler::scoped_pass(netsim::Simulator& sim, SimTime now,
                                       const topology::Topology& topo) {
  dirty_.prepare();

  // Bind every cached member. Simulator-owned ids re-bind from the flows_
  // vector (it may have reallocated since the last pass); foreign ids keep
  // the hook-time hint (the caller keeps those flows address-stable --
  // mixing foreign flows whose ids collide with simulator-owned ones is
  // unsupported in kIncremental).
  const std::size_t sim_flows = sim.flow_count();
  for (const std::uint32_t si : groups_by_key_) {
    for (CachedMember& m : slots_[si].members) {
      if (m.id.value() < sim_flows) m.flow = &sim.flow_mutable(m.id);
    }
  }

  // Identify dirty slots and absorb route churn: a rerouted member (its job
  // is always marked) releases its old interned path and adopts the new
  // route identity.
  dirty_slot_list_.clear();
  for (const std::uint32_t si : groups_by_key_) {
    GroupSlot& g = slots_[si];
    g.pass_dirty = g.force_dirty;
    if (!g.pass_dirty) {
      for (const CachedMember& m : g.members) {
        if (dirty_.contains(m.job)) {
          g.pass_dirty = true;
          break;
        }
      }
    }
    if (!g.pass_dirty) continue;
    for (const CachedMember& m : g.members) {
      FlowMeta& fm = meta_[m.id.value()];
      if (fm.route == m.flow->route) continue;
      if (!fm.route.valid()) return false;  // old path unrecoverable
      for (LinkId lid : sim.routes().path(fm.route)) {
        released_links_.push_back(lid);
      }
      fm.route = m.flow->route;
    }
    dirty_slot_list_.push_back(si);
  }

  // Union-find over the *current* member paths: two groups share a
  // component iff they (transitively) contend for a link, so groups in
  // distinct components cannot affect each other's rates.
  owner_scratch_.begin_pass(topo);
  if (uf_parent_.size() < slots_.size()) uf_parent_.resize(slots_.size());
  for (const std::uint32_t si : groups_by_key_) uf_parent_[si] = si;
  for (const std::uint32_t si : groups_by_key_) {
    for (const CachedMember& m : slots_[si].members) {
      for (LinkId lid : m.flow->path) {
        const std::uint32_t owner = owner_scratch_.touch(lid, si);
        if (owner != si) {
          const std::uint32_t ra = uf_find(si);
          const std::uint32_t rb = uf_find(owner);
          if (ra != rb) uf_parent_[ra] = rb;
        }
      }
    }
  }

  // Dirty components: those containing a marked/changed group, plus those
  // that currently own a released link (freed capacity changes their
  // backfill). A released link nobody crosses anymore affects no decision.
  if (root_dirty_.size() < slots_.size()) root_dirty_.resize(slots_.size());
  std::fill(root_dirty_.begin(), root_dirty_.end(), std::uint8_t{0});
  for (const std::uint32_t si : dirty_slot_list_) root_dirty_[uf_find(si)] = 1;
  for (LinkId lid : released_links_) {
    if (owner_scratch_.active(lid)) {
      root_dirty_[uf_find(owner_scratch_.at(lid))] = 1;
    }
  }

  // Scheduled set: every group of every dirty component, in key order (the
  // order groups_by_key_ maintains).
  order_.clear();
  for (const std::uint32_t si : groups_by_key_) {
    if (root_dirty_[uf_find(si)] != 0) order_.push_back(si);
  }
  stats_.groups_seen += groups_by_key_.size();
  stats_.groups_scheduled += order_.size();

  // Ranks: recompute changed groups, reuse era-valid caches for the clean
  // co-component ones (their members' remaining/deadlines/paths are
  // untouched this era, so the standalone tardiness is bitwise identical).
  for (const std::uint32_t si : order_) {
    GroupSlot& g = slots_[si];
    if (!g.pass_dirty && g.rank_era == era_seq_) {
      ++stats_.groups_reused;
      continue;
    }
    g.tardiness_standalone = min_uniform_tardiness(g, now, nullptr, topo);
    g.rank_key = config_.use_weights && g.weight > 0.0
                     ? g.tardiness_standalone / g.weight
                     : g.tardiness_standalone;
    g.rank_era = era_seq_;
  }
  const bool smallest_first =
      config_.ranking == InterRanking::kSmallestTardinessFirst;
  // Restriction of the full pass's total order to the scheduled subset:
  // the comparator is total, so relative order matches the full sort.
  std::sort(order_.begin(), order_.end(),
            [this, smallest_first](std::uint32_t a, std::uint32_t b) {
              const GroupSlot& ga = slots_[a];
              const GroupSlot& gb = slots_[b];
              if (ga.rank_key != gb.rank_key) {
                return smallest_first ? ga.rank_key < gb.rank_key
                                      : ga.rank_key > gb.rank_key;
              }
              return ga.key < gb.key;
            });

  run_fill(now, topo);

  // Loopback writes, restricted to dirty jobs (the full pass rewrites every
  // loopback flow with the same constants -- idempotent under the
  // compare-and-set setters for the clean ones).
  for (const LoopbackEntry& e : loopback_) {
    if (!dirty_.contains(e.job)) continue;
    netsim::Flow* f =
        e.id.value() < sim_flows ? &sim.flow_mutable(e.id) : e.hint;
    f->set_weight(1.0);
    f->clear_rate_cap();
  }

  // Scheduled groups are clean now.
  for (const std::uint32_t si : order_) {
    GroupSlot& g = slots_[si];
    if (g.force_dirty) {
      g.force_dirty = false;
      --forced_slots_;
    }
    g.pass_dirty = false;
  }
  return true;
}

}  // namespace echelon::ef
