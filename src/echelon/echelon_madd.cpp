#include "echelon/echelon_madd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

namespace echelon::ef {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Member {
  netsim::Flow* flow = nullptr;
  SimTime deadline = 0.0;  // d_j (ideal finish time)
};

struct Group {
  std::vector<Member> members;  // kept sorted by deadline (EDF order)
  double tardiness_standalone = 0.0;
  double weight = 1.0;
  double rank_key = 0.0;
};

// Minimal uniform tardiness t such that, at time `now`, every member can
// finish by deadline + t under the given capacities. Per link, with members
// in deadline order, the earliest-deadline prefix condition gives
//   t >= prefix_bytes_k / cap - (d_k - now)   for every prefix k.
// Returns +inf when a needed link has no capacity.
double min_uniform_tardiness(const Group& g, SimTime now,
                             const detail::ResidualCaps* residual,
                             const topology::Topology& topo) {
  struct PerLink {
    double prefix_bytes = 0.0;
    double cap = 0.0;
  };
  std::unordered_map<std::uint64_t, PerLink> links;
  double t = 0.0;
  for (const Member& m : g.members) {  // already deadline-sorted
    for (LinkId lid : m.flow->path) {
      auto [it, inserted] = links.try_emplace(lid.value());
      if (inserted) {
        it->second.cap = residual != nullptr ? residual->residual(lid)
                                             : topo.link(lid).capacity;
      }
      it->second.prefix_bytes += m.flow->remaining;
      if (it->second.cap <= 0.0) return kInf;
      t = std::max(t, it->second.prefix_bytes / it->second.cap -
                          (m.deadline - now));
    }
  }
  return t;
}

}  // namespace

void EchelonMaddScheduler::control(netsim::Simulator& sim,
                                   std::span<netsim::Flow*> active) {
  const topology::Topology& topo = sim.topology();
  const SimTime now = sim.now();

  // --- build deadline-annotated groups --------------------------------------
  std::map<std::uint64_t, Group> groups;
  constexpr std::uint64_t kSingletonBase = 1ULL << 63;
  for (netsim::Flow* f : active) {
    if (f->path.empty()) {
      f->weight = 1.0;
      f->rate_cap.reset();
      continue;
    }
    std::uint64_t key = kSingletonBase | f->id.value();
    SimTime deadline = f->start_time;  // fallback: tardiness == FCT
    double weight = 1.0;
    if (f->spec.group.valid() && registry_ != nullptr &&
        registry_->contains(f->spec.group)) {
      const EchelonFlow& ef = registry_->get(f->spec.group);
      if (const auto d = ef.ideal_finish(f->spec.index_in_group)) {
        key = f->spec.group.value();
        deadline = *d;
        weight = ef.weight();
      }
    }
    Group& g = groups[key];
    g.members.push_back(Member{f, deadline});
    g.weight = weight;
  }

  // EDF order within each group; rank groups by standalone achievable
  // tardiness (the Eq. 2 metric, Property 4's SEBF analog).
  std::vector<std::map<std::uint64_t, Group>::iterator> order;
  order.reserve(groups.size());
  for (auto it = groups.begin(); it != groups.end(); ++it) {
    Group& g = it->second;
    std::stable_sort(g.members.begin(), g.members.end(),
                     [](const Member& a, const Member& b) {
                       return a.deadline < b.deadline;
                     });
    g.tardiness_standalone =
        min_uniform_tardiness(g, now, nullptr, topo);
    // Weighted ranking: tardiness scaled by 1/weight, so heavier
    // EchelonFlows sort as if they were further ahead (smallest-first) or
    // further behind (largest-first).
    g.rank_key = config_.use_weights && g.weight > 0.0
                     ? g.tardiness_standalone / g.weight
                     : g.tardiness_standalone;
    order.push_back(it);
  }
  const bool smallest_first =
      config_.ranking == InterRanking::kSmallestTardinessFirst;
  std::stable_sort(order.begin(), order.end(),
                   [smallest_first](auto a, auto b) {
                     const double ta = a->second.rank_key;
                     const double tb = b->second.rank_key;
                     return smallest_first ? ta < tb : ta > tb;
                   });

  // --- MADD pass: pace member j to deadline d_j + t* -------------------------
  // Groups are served in rank order against residual capacity. Within a
  // group, members are processed one *deadline level* at a time (a level =
  // maximal run of equal deadlines, i.e. one Coflow stage):
  //   1. every member of the level gets its pacing rate remaining/horizon,
  //   2. (work conservation) leftover capacity is immediately granted to the
  //      level, scaled proportionally to remaining bytes so tied flows keep
  //      finishing together.
  // Backfilling level-by-level preserves EDF priority: the earliest deadline
  // absorbs slack before any later deadline sees it, which on a single
  // bottleneck reproduces full-rate EDF exactly. With a single level (Eq. 5
  // arrangement) the pass degenerates to Coflow-MADD (Property 2).
  detail::ResidualCaps caps(&topo);
  for (auto it : order) {
    Group& g = it->second;
    const double tstar = min_uniform_tardiness(g, now, &caps, topo);
    std::size_t i = 0;
    while (i < g.members.size()) {
      std::size_t j = i + 1;
      while (j < g.members.size() &&
             time_eq(g.members[j].deadline, g.members[i].deadline)) {
        ++j;
      }

      // 1. Pacing rates for level [i, j).
      for (std::size_t k = i; k < j; ++k) {
        netsim::Flow* f = g.members[k].flow;
        double rate = 0.0;
        if (std::isfinite(tstar)) {
          const double horizon = g.members[k].deadline + tstar - now;
          // horizon > 0 by construction (every member bounds t* through the
          // prefix ending at itself); guard against degenerate input anyway.
          rate = horizon > 0.0 ? f->remaining / horizon : kInf;
        }
        rate = std::min(rate, caps.path_residual(*f));
        f->weight = 1.0;
        f->rate_cap = rate;
        caps.consume(*f, rate);
      }

      // 2. Work conservation for the level.
      if (config_.work_conserving) {
        std::unordered_map<std::uint64_t, double> load;
        for (std::size_t k = i; k < j; ++k) {
          const netsim::Flow* f = g.members[k].flow;
          for (LinkId lid : f->path) load[lid.value()] += f->remaining;
        }
        double lambda = kInf;
        for (const auto& [lid, bytes] : load) {
          if (bytes <= 0.0) continue;
          lambda = std::min(lambda, caps.residual(LinkId{lid}) / bytes);
        }
        if (std::isfinite(lambda) && lambda > 0.0) {
          for (std::size_t k = i; k < j; ++k) {
            netsim::Flow* f = g.members[k].flow;
            const double extra = f->remaining * lambda;
            if (extra <= 0.0) continue;
            f->rate_cap = *f->rate_cap + extra;
            caps.consume(*f, extra);
          }
        }
      }
      i = j;
    }
  }

  // Final per-flow backfill (rank order, then EDF order within a group):
  // grants capacity the level-proportional pass could not use, e.g. when one
  // member of a level is blocked by a higher-ranked EchelonFlow while the
  // others have idle ports.
  if (config_.work_conserving) {
    for (auto it : order) {
      for (Member& m : it->second.members) {
        const double extra = caps.path_residual(*m.flow);
        if (extra <= 0.0 || !std::isfinite(extra)) continue;
        m.flow->rate_cap = *m.flow->rate_cap + extra;
        caps.consume(*m.flow, extra);
      }
    }
  }
}

}  // namespace echelon::ef
