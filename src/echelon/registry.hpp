// EchelonFlow registry: the bridge between the abstraction and the simulator.
//
// Training-paradigm generators create EchelonFlow descriptors up front
// (arrangement + expected cardinality); at runtime the registry observes
// flow arrivals/departures (via simulator listeners or scheduler hooks),
// binds them to member positions through FlowSpec::group/index_in_group,
// fixes reference times, and aggregates the optimization objectives:
// Eq. 3 (single-EchelonFlow tardiness) and Eq. 4 (sum over EchelonFlows).

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "echelon/echelonflow.hpp"
#include "netsim/simulator.hpp"

namespace echelon::ef {

class Registry {
 public:
  Registry() = default;

  // Declares a new EchelonFlow. The returned id is stamped into
  // FlowSpec::group of every member flow by the workload generator.
  EchelonFlowId create(JobId job, Arrangement arrangement,
                       std::string label = {}, double weight = 1.0);

  [[nodiscard]] bool contains(EchelonFlowId id) const {
    return id.valid() && id.value() < echelonflows_.size();
  }
  [[nodiscard]] EchelonFlow& get(EchelonFlowId id) {
    return *echelonflows_.at(id.value());
  }
  [[nodiscard]] const EchelonFlow& get(EchelonFlowId id) const {
    return *echelonflows_.at(id.value());
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return echelonflows_.size();
  }

  // --- runtime wiring ---------------------------------------------------------

  // Observes a flow entering / leaving the network. Flows whose spec carries
  // no (valid) group are ignored.
  void note_arrival(const netsim::Flow& flow, SimTime now);
  void note_departure(const netsim::Flow& flow, SimTime now);

  // Subscribes the registry to a simulator so it sees every flow under any
  // scheduler (baselines included), enabling like-for-like tardiness
  // measurement. The registry must outlive the simulator run.
  void attach(netsim::Simulator& sim);

  // --- objectives --------------------------------------------------------------

  // Eq. 4: sum of tardiness over all *complete* EchelonFlows.
  [[nodiscard]] Duration total_tardiness() const;

  // Weighted variant mentioned under Eq. 4.
  [[nodiscard]] Duration weighted_total_tardiness() const;

  [[nodiscard]] std::vector<const EchelonFlow*> all() const;

 private:
  std::vector<std::unique_ptr<EchelonFlow>> echelonflows_;
  // Set by attach(). Registry mutations that can flip a scheduler's
  // resolve() outcome for already-cached flows (a new EchelonFlow binding
  // pending members, a reference time fixed by a first-started member)
  // escalate to a full pass -- they are not attributable to one job's mark.
  netsim::Simulator* sim_ = nullptr;
};

}  // namespace echelon::ef
