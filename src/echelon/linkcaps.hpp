// Residual link-capacity tracking shared by the MADD-family schedulers.

#pragma once

#include <unordered_map>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "netsim/flow.hpp"
#include "topology/graph.hpp"

namespace echelon::ef::detail {

class ResidualCaps {
 public:
  explicit ResidualCaps(const topology::Topology* topo) : topo_(topo) {}

  [[nodiscard]] double residual(LinkId lid) const {
    const auto it = residual_.find(lid.value());
    return it != residual_.end() ? it->second : topo_->link(lid).capacity;
  }

  // Smallest residual along a flow's path (infinity for empty paths).
  [[nodiscard]] double path_residual(const netsim::Flow& f) const {
    double r = std::numeric_limits<double>::infinity();
    for (LinkId lid : f.path) r = std::min(r, residual(lid));
    return r;
  }

  void consume(const netsim::Flow& f, double rate) {
    if (rate <= 0.0) return;
    for (LinkId lid : f.path) {
      auto [it, inserted] = residual_.try_emplace(lid.value(),
                                                  topo_->link(lid).capacity);
      it->second = std::max(0.0, it->second - rate);
    }
  }

 private:
  const topology::Topology* topo_;
  std::unordered_map<std::uint64_t, double> residual_;
};

}  // namespace echelon::ef::detail
