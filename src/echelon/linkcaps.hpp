// Residual link-capacity tracking shared by the MADD-family schedulers.
//
// Arena-backed: the residual table is a dense, epoch-stamped array indexed
// by LinkId (see topology/dense.hpp). reset() re-arms it in O(1) -- no
// per-pass hash maps, no O(L) clears. Scheduler objects keep a ResidualCaps
// member across control() passes so the backing arrays are allocated once
// and steady-state passes are allocation-free. A link that was never
// consumed this pass reads as its full (current) capacity straight from the
// topology, so runtime capacity changes are picked up automatically.

#pragma once

#include <algorithm>
#include <limits>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "netsim/flow.hpp"
#include "topology/dense.hpp"
#include "topology/graph.hpp"

namespace echelon::ef::detail {

class ResidualCaps {
 public:
  ResidualCaps() = default;
  // Convenience for one-shot use; long-lived schedulers should hold a member
  // and call reset() once per control() pass instead.
  explicit ResidualCaps(const topology::Topology* topo) { reset(topo); }

  // Re-arms the table: every link is back to full capacity. O(1) after the
  // arena has grown to the topology's link count.
  void reset(const topology::Topology* topo) {
    topo_ = topo;
    scratch_.begin_pass(*topo);
  }

  [[nodiscard]] double residual(LinkId lid) const {
    const double* r = scratch_.find(lid);
    return r != nullptr ? *r : topo_->link(lid).capacity;
  }

  // Smallest residual along a flow's path (infinity for empty paths).
  [[nodiscard]] double path_residual(const netsim::Flow& f) const {
    double r = std::numeric_limits<double>::infinity();
    for (LinkId lid : f.path) r = std::min(r, residual(lid));
    return r;
  }

  void consume(const netsim::Flow& f, double rate) {
    if (rate <= 0.0) return;
    for (LinkId lid : f.path) {
      double& r = scratch_.touch(lid, topo_->link(lid).capacity);
      r = std::max(0.0, r - rate);
    }
  }

 private:
  const topology::Topology* topo_ = nullptr;
  topology::LinkScratch<double> scratch_;
};

}  // namespace echelon::ef::detail
