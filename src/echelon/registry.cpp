#include "echelon/registry.hpp"

namespace echelon::ef {

EchelonFlowId Registry::create(JobId job, Arrangement arrangement,
                               std::string label, double weight) {
  const EchelonFlowId id{echelonflows_.size()};
  echelonflows_.push_back(std::make_unique<EchelonFlow>(
      id, job, std::move(arrangement), std::move(label), weight));
  return id;
}

void Registry::note_arrival(const netsim::Flow& flow, SimTime now) {
  const EchelonFlowId gid = flow.spec.group;
  if (!contains(gid)) return;
  get(gid).note_start(flow.spec.index_in_group, flow.id, flow.spec.size, now);
}

void Registry::note_departure(const netsim::Flow& flow, SimTime now) {
  const EchelonFlowId gid = flow.spec.group;
  if (!contains(gid)) return;
  get(gid).note_finish(flow.spec.index_in_group, now);
}

void Registry::attach(netsim::Simulator& sim) {
  sim.add_flow_arrival_listener(
      [this](netsim::Simulator& s, const netsim::Flow& f) {
        note_arrival(f, s.now());
      });
  sim.add_flow_listener([this](netsim::Simulator& s, const netsim::Flow& f) {
    note_departure(f, s.now());
  });
}

Duration Registry::total_tardiness() const {
  Duration sum = 0.0;
  for (const auto& ef : echelonflows_) {
    if (ef->complete()) sum += ef->tardiness();
  }
  return sum;
}

Duration Registry::weighted_total_tardiness() const {
  Duration sum = 0.0;
  for (const auto& ef : echelonflows_) {
    if (ef->complete()) sum += ef->weight() * ef->tardiness();
  }
  return sum;
}

std::vector<const EchelonFlow*> Registry::all() const {
  std::vector<const EchelonFlow*> out;
  out.reserve(echelonflows_.size());
  for (const auto& ef : echelonflows_) out.push_back(ef.get());
  return out;
}

}  // namespace echelon::ef
