#include "echelon/registry.hpp"

namespace echelon::ef {

EchelonFlowId Registry::create(JobId job, Arrangement arrangement,
                               std::string label, double weight) {
  const EchelonFlowId id{echelonflows_.size()};
  echelonflows_.push_back(std::make_unique<EchelonFlow>(
      id, job, std::move(arrangement), std::move(label), weight));
  // Late registration can turn an already-cached member's resolve() from
  // PENDING into a real deadline without that member's job being re-marked.
  if (sim_ != nullptr) sim_->mark_all_jobs_dirty();
  return id;
}

void Registry::note_arrival(const netsim::Flow& flow, SimTime now) {
  const EchelonFlowId gid = flow.spec.group;
  if (!contains(gid)) return;
  EchelonFlow& ef = get(gid);
  const bool had_reference = ef.reference_known();
  ef.note_start(flow.spec.index_in_group, flow.id, flow.spec.size, now);
  // The first started member fixes r, turning every sibling's ideal finish
  // d_j = r + offset_j from unknown to known -- siblings may belong to
  // other jobs (or already sit in a scheduler cache), so escalate.
  if (!had_reference && ef.reference_known() && sim_ != nullptr) {
    sim_->mark_all_jobs_dirty();
  }
}

void Registry::note_departure(const netsim::Flow& flow, SimTime now) {
  const EchelonFlowId gid = flow.spec.group;
  if (!contains(gid)) return;
  get(gid).note_finish(flow.spec.index_in_group, now);
}

void Registry::attach(netsim::Simulator& sim) {
  sim_ = &sim;
  sim.add_flow_arrival_listener(
      [this](netsim::Simulator& s, const netsim::Flow& f) {
        note_arrival(f, s.now());
      });
  sim.add_flow_listener([this](netsim::Simulator& s, const netsim::Flow& f) {
    note_departure(f, s.now());
  });
}

Duration Registry::total_tardiness() const {
  Duration sum = 0.0;
  for (const auto& ef : echelonflows_) {
    if (ef->complete()) sum += ef->tardiness();
  }
  return sum;
}

Duration Registry::weighted_total_tardiness() const {
  Duration sum = 0.0;
  for (const auto& ef : echelonflows_) {
    if (ef->complete()) sum += ef->weight() * ef->tardiness();
  }
  return sum;
}

std::vector<const EchelonFlow*> Registry::all() const {
  std::vector<const EchelonFlow*> out;
  out.reserve(echelonflows_.size());
  for (const auto& ef : echelonflows_) out.push_back(ef.get());
  return out;
}

}  // namespace echelon::ef
