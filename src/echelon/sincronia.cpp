#include "echelon/sincronia.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace echelon::ef {

void SincroniaScheduler::control(netsim::Simulator& sim,
                                 std::span<netsim::Flow*> active) {
  ++stats_.passes;
  // Skip-only incremental tier (see header): within one era with no dirty
  // jobs a full pass rewrites bitwise-identical values, so returning here
  // is exact. Any mark -- or any era movement -- falls through to the full
  // BSSI recomputation.
  const std::uint64_t acc = sim.accounting_generation();
  const std::uint64_t cap = sim.topology().capacity_epoch();
  const bool same_era = acc == last_acc_gen_ && cap == last_cap_epoch_;
  last_acc_gen_ = acc;
  last_cap_epoch_ = cap;
  if (sched_mode_ == netsim::SchedMode::kIncremental && same_era &&
      dirty_.empty()) {
    ++stats_.pass_skips;
    return;
  }
  dirty_.clear();
  ++stats_.full_passes;

  struct Group {
    std::vector<netsim::Flow*> flows;
    std::unordered_map<std::uint64_t, Bytes> port_load;
    bool placed = false;
  };
  std::map<std::uint64_t, Group> groups;
  for (netsim::Flow* f : active) {
    if (f->path.empty()) {
      f->set_weight(1.0);
      f->clear_rate_cap();
      continue;
    }
    const std::uint64_t key = f->spec.group.valid()
                                  ? f->spec.group.value()
                                  : (1ULL << 63) | f->id.value();
    Group& g = groups[key];
    g.flows.push_back(f);
    for (LinkId lid : f->path) g.port_load[lid.value()] += f->remaining;
  }
  if (groups.empty()) return;

  // --- BSSI: build the order back to front -----------------------------------
  const topology::Topology& topo = sim.topology();
  std::vector<Group*> reverse_order;
  reverse_order.reserve(groups.size());
  std::unordered_map<std::uint64_t, Bytes> port_total;
  for (const auto& [key, g] : groups) {
    (void)key;
    for (const auto& [port, bytes] : g.port_load) port_total[port] += bytes;
  }
  for (std::size_t placed = 0; placed < groups.size(); ++placed) {
    // Most-bottlenecked port: largest normalized residual demand.
    std::uint64_t bottleneck = 0;
    double worst = -1.0;
    for (const auto& [port, bytes] : port_total) {
      const double cap = topo.link(LinkId{port}).capacity;
      const double load = cap > 0.0 ? bytes / cap : bytes;
      if (load > worst) {
        worst = load;
        bottleneck = port;
      }
    }
    // Among unplaced groups using it, the largest contributor goes last.
    Group* last = nullptr;
    Bytes last_bytes = -1.0;
    for (auto& [key, g] : groups) {
      (void)key;
      if (g.placed) continue;
      const auto it = g.port_load.find(bottleneck);
      const Bytes b = it != g.port_load.end() ? it->second : 0.0;
      if (b > last_bytes) {
        last_bytes = b;
        last = &g;
      }
    }
    last->placed = true;
    reverse_order.push_back(last);
    for (const auto& [port, bytes] : last->port_load) {
      port_total[port] -= bytes;
    }
  }

  // --- greedy order-respecting water-fill -------------------------------------
  caps_.reset(&topo);
  for (auto it = reverse_order.rbegin(); it != reverse_order.rend(); ++it) {
    for (netsim::Flow* f : (*it)->flows) {
      const double rate = caps_.path_residual(*f);
      f->set_weight(1.0);
      f->set_rate_cap(std::isfinite(rate) ? rate : 0.0);
      caps_.consume(*f, *f->rate_cap);
    }
  }
}

}  // namespace echelon::ef
