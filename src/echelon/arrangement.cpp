#include "echelon/arrangement.hpp"

#include <cassert>

namespace echelon::ef {

Arrangement Arrangement::coflow(int n) {
  assert(n >= 0);
  return Arrangement(std::vector<Duration>(static_cast<std::size_t>(n), 0.0));
}

Arrangement Arrangement::pipeline(int n, Duration T) {
  assert(n >= 0 && T >= 0.0);
  std::vector<Duration> offsets(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) offsets[static_cast<std::size_t>(j)] = j * T;
  return Arrangement(std::move(offsets));
}

Arrangement Arrangement::fsdp(int n_layers, int flows_per_stage,
                              Duration t_fwd, Duration t_bwd) {
  assert(n_layers >= 1 && flows_per_stage >= 1);
  std::vector<int> sizes;
  std::vector<Duration> offsets;
  Duration acc = 0.0;
  for (int i = 0; i < 2 * n_layers; ++i) {
    // d_c0 = r; forward stages 1..n-1 add T_fwd; backward stages add T_bwd.
    if (i > 0) acc += i <= n_layers - 1 ? t_fwd : t_bwd;
    sizes.push_back(flows_per_stage);
    offsets.push_back(acc);
  }
  return staged(sizes, offsets);
}

Arrangement Arrangement::from_offsets(std::vector<Duration> offsets) {
  for (std::size_t j = 1; j < offsets.size(); ++j) {
    assert(offsets[j] >= offsets[j - 1] &&
           "flow offsets must be non-decreasing");
  }
  return Arrangement(std::move(offsets));
}

Arrangement Arrangement::staged(const std::vector<int>& stage_sizes,
                                const std::vector<Duration>& stage_offsets) {
  assert(stage_sizes.size() == stage_offsets.size());
  std::vector<Duration> offsets;
  for (std::size_t s = 0; s < stage_sizes.size(); ++s) {
    assert(stage_sizes[s] >= 0);
    for (int k = 0; k < stage_sizes[s]; ++k) {
      offsets.push_back(stage_offsets[s]);
    }
  }
  return from_offsets(std::move(offsets));
}

bool Arrangement::is_coflow_compliant() const noexcept {
  for (Duration off : offsets_) {
    if (!time_eq(off, offsets_.empty() ? 0.0 : offsets_.front())) return false;
  }
  return true;
}

std::string Arrangement::describe() const {
  if (is_coflow_compliant()) return "same flow finish time";
  // Distinguish fully staggered (every offset distinct) from staged
  // (groups sharing an offset -- FSDP's "staggered Coflow finish time").
  bool has_ties = false;
  for (std::size_t j = 1; j < offsets_.size(); ++j) {
    if (time_eq(offsets_[j], offsets_[j - 1])) {
      has_ties = true;
      break;
    }
  }
  return has_ties ? "staggered Coflow finish time" : "staggered flow finish time";
}

}  // namespace echelon::ef
