#include "echelon/coflow_madd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace echelon::ef {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint64_t kSingletonBase = 1ULL << 63;

[[nodiscard]] std::uint64_t group_key(const netsim::Flow& f) {
  return f.spec.group.valid() ? f.spec.group.value()
                              : kSingletonBase | f.id.value();
}

}  // namespace

// Standalone completion bound: served alone on an idle fabric, the coflow
// cannot finish faster than its most loaded link allows. Per-link load
// accumulates in the epoch-stamped load_ arena; gamma is a max-fold over the
// touched links, so touch order does not affect the result.
double CoflowMaddScheduler::standalone_gamma(const topology::Topology& topo,
                                             const Grp& g) {
  load_.begin_pass(topo);
  for (std::uint32_t i = g.begin; i < g.end; ++i) {
    const netsim::Flow* f = members_[i];
    for (LinkId lid : f->path) load_.touch(lid) += f->remaining;
  }
  double gamma = 0.0;
  for (const std::uint32_t li : load_.touched()) {
    const double bytes = load_.at(LinkId{li});
    const double cap = topo.link(LinkId{li}).capacity;
    gamma = std::max(gamma, cap > 0.0 ? bytes / cap : kInf);
  }
  return gamma;
}

// Completion bound against the residual fabric left by higher-priority
// coflows. Infinite when some needed link is exhausted.
double CoflowMaddScheduler::residual_gamma(const Grp& g) {
  double gamma = 0.0;
  for (const std::uint32_t li : load_.touched()) {
    const double bytes = load_.at(LinkId{li});
    const double cap = caps_.residual(LinkId{li});
    if (cap <= 0.0) return kInf;
    gamma = std::max(gamma, bytes / cap);
  }
  return gamma;
}

void CoflowMaddScheduler::on_flow_departure(netsim::Simulator&,
                                            const netsim::Flow& flow) {
  if (flow.path.empty()) return;
  // Freed capacity re-dirties whichever component owns these links at the
  // next scoped pass; the surviving members' coflow is re-ranked through
  // departed_keys_ (its gamma shrank even if none of their jobs is marked).
  for (LinkId lid : flow.path) released_links_.push_back(lid);
  const std::uint64_t key = group_key(flow);
  departed_keys_.push_back(key);
  gamma_cache_.erase(key);
}

std::uint32_t CoflowMaddScheduler::uf_find(std::uint32_t x) noexcept {
  while (uf_parent_[x] != x) {  // path halving
    uf_parent_[x] = uf_parent_[uf_parent_[x]];
    x = uf_parent_[x];
  }
  return x;
}

void CoflowMaddScheduler::control(netsim::Simulator& sim,
                                  std::span<netsim::Flow*> active) {
  const topology::Topology& topo = sim.topology();
  ++stats_.passes;

  // Era classification (see DESIGN.md §12): within one
  // (accounting_generation, capacity_epoch) pair every remaining-byte and
  // capacity operand is bitwise unchanged, so cached standalone gammas stay
  // exact and an empty dirty set makes the whole pass a no-op.
  const std::uint64_t acc = sim.accounting_generation();
  const std::uint64_t cap = topo.capacity_epoch();
  const bool same_era = acc == last_acc_gen_ && cap == last_cap_epoch_;
  if (!same_era) {
    ++era_seq_;
    last_acc_gen_ = acc;
    last_cap_epoch_ = cap;
  }
  const bool incremental = sched_mode_ == netsim::SchedMode::kIncremental;
  if (incremental && same_era && dirty_.empty() && released_links_.empty() &&
      departed_keys_.empty()) {
    ++stats_.pass_skips;
    return;
  }
  const bool scoped = incremental && same_era && !dirty_.all();
  if (scoped) dirty_.prepare();

  // --- group by coflow id ----------------------------------------------------
  // Two-pass counting into a flat member arena: pass 1 counts members per
  // key (epoch-stamped open-addressing map, no node allocations), pass 2
  // places flows in span order, so intra-coflow order matches the seed's
  // std::map-of-vectors exactly.
  groups_.clear();
  key_slots_.begin_pass(active.size());
  std::size_t routed = 0;
  for (netsim::Flow* f : active) {
    if (f->path.empty()) {  // loopback: never network-limited
      f->set_weight(1.0);
      f->clear_rate_cap();
      continue;
    }
    ++routed;
    bool inserted = false;
    std::uint32_t& slot = key_slots_.find_or_insert(group_key(*f), inserted);
    if (inserted) {
      slot = static_cast<std::uint32_t>(groups_.size());
      groups_.push_back(Grp{group_key(*f), 0, 0, 0.0});
    }
    ++groups_[slot].end;  // member count; converted to offsets below
  }
  members_.resize(routed);
  std::uint32_t running = 0;
  for (Grp& g : groups_) {
    const std::uint32_t count = g.end;
    g.begin = running;
    g.end = running;  // fill cursor; advances to begin + count below
    running += count;
  }
  for (netsim::Flow* f : active) {
    if (f->path.empty()) continue;
    const std::uint32_t slot = *key_slots_.find(group_key(*f));
    members_[groups_[slot].end++] = f;
  }

  // Standalone gammas: recompute changed coflows, serve clean ones from the
  // era-stamped cache (their members' remaining bytes and paths are
  // untouched this era, so the cached fold is bitwise identical).
  const std::uint32_t ngroups = static_cast<std::uint32_t>(groups_.size());
  for (std::uint32_t i = 0; i < ngroups; ++i) {
    Grp& g = groups_[i];
    if (scoped) {
      g.pass_dirty = std::find(departed_keys_.begin(), departed_keys_.end(),
                               g.key) != departed_keys_.end();
      if (!g.pass_dirty) {
        for (std::uint32_t j = g.begin; j < g.end; ++j) {
          if (dirty_.contains(members_[j]->spec.job.value())) {
            g.pass_dirty = true;
            break;
          }
        }
      }
      if (!g.pass_dirty) {
        const auto it = gamma_cache_.find(g.key);
        if (it != gamma_cache_.end() && it->second.era == era_seq_) {
          g.gamma_standalone = it->second.gamma;
          ++stats_.groups_reused;
          continue;
        }
      }
    }
    g.gamma_standalone = standalone_gamma(topo, g);
    if (incremental) {
      gamma_cache_[g.key] = GammaEntry{g.gamma_standalone, era_seq_};
    }
  }

  // Scheduled set: all coflows on a full pass; on a scoped pass, the whole
  // of every link-disjoint component that contains a changed coflow or owns
  // a released link (freed capacity changes its backfill).
  order_.clear();
  if (scoped) {
    owner_scratch_.begin_pass(topo);
    if (uf_parent_.size() < ngroups) uf_parent_.resize(ngroups);
    if (root_dirty_.size() < ngroups) root_dirty_.resize(ngroups);
    for (std::uint32_t i = 0; i < ngroups; ++i) uf_parent_[i] = i;
    for (std::uint32_t i = 0; i < ngroups; ++i) {
      const Grp& g = groups_[i];
      for (std::uint32_t j = g.begin; j < g.end; ++j) {
        for (LinkId lid : members_[j]->path) {
          const std::uint32_t owner = owner_scratch_.touch(lid, i);
          if (owner != i) {
            const std::uint32_t ra = uf_find(i);
            const std::uint32_t rb = uf_find(owner);
            if (ra != rb) uf_parent_[ra] = rb;
          }
        }
      }
    }
    std::fill(root_dirty_.begin(), root_dirty_.begin() + ngroups,
              std::uint8_t{0});
    for (std::uint32_t i = 0; i < ngroups; ++i) {
      if (groups_[i].pass_dirty) root_dirty_[uf_find(i)] = 1;
    }
    for (LinkId lid : released_links_) {
      if (owner_scratch_.active(lid)) {
        root_dirty_[uf_find(owner_scratch_.at(lid))] = 1;
      }
    }
    for (std::uint32_t i = 0; i < ngroups; ++i) {
      if (root_dirty_[uf_find(i)] != 0) order_.push_back(i);
    }
    stats_.groups_seen += ngroups;
    stats_.groups_scheduled += order_.size();
    ++stats_.scoped_passes;
  } else {
    for (std::uint32_t i = 0; i < ngroups; ++i) order_.push_back(i);
    ++stats_.full_passes;
  }
  dirty_.clear();
  released_links_.clear();
  departed_keys_.clear();

  // SEBF order: ascending standalone Gamma, key as deterministic tie-break
  // (reproducing the seed's stable_sort over a key-ascending std::map, via
  // allocation-free std::sort). On a scoped pass this is the restriction of
  // the full pass's total order to the scheduled subset.
  std::sort(order_.begin(), order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (groups_[a].gamma_standalone != groups_[b].gamma_standalone) {
                return groups_[a].gamma_standalone < groups_[b].gamma_standalone;
              }
              return groups_[a].key < groups_[b].key;
            });

  // MADD pass: pace every flow of the coflow to finish at the (residual)
  // bottleneck completion time.
  caps_.reset(&topo);
  for (const std::uint32_t gi : order_) {
    const Grp& g = groups_[gi];
    // Re-accumulate this group's per-link load (residual_gamma folds over
    // the load_ arena the accumulation below leaves behind).
    load_.begin_pass(topo);
    for (std::uint32_t i = g.begin; i < g.end; ++i) {
      const netsim::Flow* f = members_[i];
      for (LinkId lid : f->path) load_.touch(lid) += f->remaining;
    }
    const double gamma = residual_gamma(g);
    for (std::uint32_t i = g.begin; i < g.end; ++i) {
      netsim::Flow* f = members_[i];
      double rate = std::isinf(gamma) || gamma <= 0.0 ? 0.0
                                                      : f->remaining / gamma;
      rate = std::min(rate, caps_.path_residual(*f));  // numerical safety
      f->set_weight(1.0);
      f->set_rate_cap(rate);
      caps_.consume(*f, rate);
    }
  }

  // Work conservation (as in Varys' backfilling): leftovers go to coflows in
  // SEBF order. First scale each coflow proportionally to remaining bytes
  // (preserving simultaneous finishes where the whole coflow can speed up),
  // then grant any capacity that proportional scaling could not use -- e.g.
  // when one member's port is taken by a higher-ranked coflow -- flow by
  // flow.
  if (config_.work_conserving) {
    for (const std::uint32_t gi : order_) {
      const Grp& g = groups_[gi];
      load_.begin_pass(topo);
      for (std::uint32_t i = g.begin; i < g.end; ++i) {
        const netsim::Flow* f = members_[i];
        for (LinkId lid : f->path) load_.touch(lid) += f->remaining;
      }
      double lambda = kInf;
      for (const std::uint32_t li : load_.touched()) {
        const double bytes = load_.at(LinkId{li});
        if (bytes <= 0.0) continue;
        lambda = std::min(lambda, caps_.residual(LinkId{li}) / bytes);
      }
      if (!std::isfinite(lambda) || lambda < 0.0) lambda = 0.0;
      for (std::uint32_t i = g.begin; i < g.end; ++i) {
        netsim::Flow* f = members_[i];
        const double extra = f->remaining * lambda;
        if (extra <= 0.0) continue;
        f->set_rate_cap(*f->rate_cap + extra);
        caps_.consume(*f, extra);
      }
    }
    for (const std::uint32_t gi : order_) {
      const Grp& g = groups_[gi];
      for (std::uint32_t i = g.begin; i < g.end; ++i) {
        netsim::Flow* f = members_[i];
        const double extra = caps_.path_residual(*f);
        if (extra <= 0.0 || !std::isfinite(extra)) continue;
        f->set_rate_cap(*f->rate_cap + extra);
        caps_.consume(*f, extra);
      }
    }
  }
}

}  // namespace echelon::ef
