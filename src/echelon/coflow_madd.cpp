#include "echelon/coflow_madd.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

namespace echelon::ef {

namespace {

struct Group {
  std::vector<netsim::Flow*> flows;
  double gamma_standalone = 0.0;
};

// Standalone completion bound: served alone on an idle fabric, the coflow
// cannot finish faster than its most loaded link allows.
double standalone_gamma(const topology::Topology& topo, const Group& g) {
  std::unordered_map<std::uint64_t, double> load;
  for (const netsim::Flow* f : g.flows) {
    for (LinkId lid : f->path) load[lid.value()] += f->remaining;
  }
  double gamma = 0.0;
  for (const auto& [lid, bytes] : load) {
    const double cap = topo.link(LinkId{lid}).capacity;
    gamma = std::max(gamma, cap > 0.0 ? bytes / cap
                                      : std::numeric_limits<double>::infinity());
  }
  return gamma;
}

// Completion bound against the residual fabric left by higher-priority
// coflows. Infinite when some needed link is exhausted.
double residual_gamma(const detail::ResidualCaps& caps, const Group& g) {
  std::unordered_map<std::uint64_t, double> load;
  for (const netsim::Flow* f : g.flows) {
    for (LinkId lid : f->path) load[lid.value()] += f->remaining;
  }
  double gamma = 0.0;
  for (const auto& [lid, bytes] : load) {
    const double cap = caps.residual(LinkId{lid});
    if (cap <= 0.0) return std::numeric_limits<double>::infinity();
    gamma = std::max(gamma, bytes / cap);
  }
  return gamma;
}

}  // namespace

void CoflowMaddScheduler::control(netsim::Simulator& sim,
                                  std::span<netsim::Flow*> active) {
  const topology::Topology& topo = sim.topology();

  // Group by coflow id; ungrouped flows become singletons keyed after all
  // real groups (high bit set), so keys stay unique and ordering is stable.
  std::map<std::uint64_t, Group> groups;
  constexpr std::uint64_t kSingletonBase = 1ULL << 63;
  for (netsim::Flow* f : active) {
    if (f->path.empty()) {  // loopback: never network-limited
      f->weight = 1.0;
      f->rate_cap.reset();
      continue;
    }
    const std::uint64_t key = f->spec.group.valid()
                                  ? f->spec.group.value()
                                  : kSingletonBase | f->id.value();
    groups[key].flows.push_back(f);
  }

  // SEBF order: ascending standalone Gamma, key as deterministic tie-break.
  std::vector<std::map<std::uint64_t, Group>::iterator> order;
  order.reserve(groups.size());
  for (auto it = groups.begin(); it != groups.end(); ++it) {
    it->second.gamma_standalone = standalone_gamma(topo, it->second);
    order.push_back(it);
  }
  std::stable_sort(order.begin(), order.end(), [](auto a, auto b) {
    return a->second.gamma_standalone < b->second.gamma_standalone;
  });

  // MADD pass: pace every flow of the coflow to finish at the (residual)
  // bottleneck completion time.
  detail::ResidualCaps caps(&topo);
  for (auto it : order) {
    Group& g = it->second;
    const double gamma = residual_gamma(caps, g);
    for (netsim::Flow* f : g.flows) {
      double rate = std::isinf(gamma) || gamma <= 0.0 ? 0.0
                                                      : f->remaining / gamma;
      rate = std::min(rate, caps.path_residual(*f));  // numerical safety
      f->weight = 1.0;
      f->rate_cap = rate;
      caps.consume(*f, rate);
    }
  }

  // Work conservation (as in Varys' backfilling): leftovers go to coflows in
  // SEBF order. First scale each coflow proportionally to remaining bytes
  // (preserving simultaneous finishes where the whole coflow can speed up),
  // then grant any capacity that proportional scaling could not use -- e.g.
  // when one member's port is taken by a higher-ranked coflow -- flow by
  // flow.
  if (config_.work_conserving) {
    for (auto it : order) {
      Group& g = it->second;
      std::unordered_map<std::uint64_t, double> load;
      for (const netsim::Flow* f : g.flows) {
        for (LinkId lid : f->path) load[lid.value()] += f->remaining;
      }
      double lambda = std::numeric_limits<double>::infinity();
      for (const auto& [lid, bytes] : load) {
        if (bytes <= 0.0) continue;
        lambda = std::min(lambda, caps.residual(LinkId{lid}) / bytes);
      }
      if (!std::isfinite(lambda) || lambda < 0.0) lambda = 0.0;
      for (netsim::Flow* f : g.flows) {
        const double extra = f->remaining * lambda;
        if (extra <= 0.0) continue;
        f->rate_cap = *f->rate_cap + extra;
        caps.consume(*f, extra);
      }
    }
    for (auto it : order) {
      for (netsim::Flow* f : it->second.flows) {
        const double extra = caps.path_residual(*f);
        if (extra <= 0.0 || !std::isfinite(extra)) continue;
        f->rate_cap = *f->rate_cap + extra;
        caps.consume(*f, extra);
      }
    }
  }
}

}  // namespace echelon::ef
