// Non-clairvoyant group scheduling in the style of Aalo (Chowdhury &
// Stoica, SIGCOMM'15 -- "Efficient coflow scheduling without prior
// knowledge"), which the paper cites among the Coflow systems EchelonFlow
// builds on.
//
// No flow sizes, deadlines or arrangements are consulted -- only what is
// observable on the wire: the total bytes each group has *sent so far*.
// Groups are binned into multi-level queues with exponentially growing
// thresholds; lower queues (fewer sent bytes) get strict priority, groups
// within a queue share FIFO-by-first-flow-arrival, and flows of the served
// groups water-fill their ports.
//
// This is the information-oblivious end of the baseline spectrum:
//   SRPT (per-flow, clairvoyant) .. Aalo (group, oblivious)
//   .. Coflow-MADD (group, clairvoyant) .. EchelonFlow-MADD (+ application
//   arrangement knowledge).
//
// Hot-path data layout: per-pass grouping uses the same two-pass counting
// arena as Coflow-MADD (no std::map nodes per pass); residual port state is
// the dense arena-backed ResidualCaps. Only the *persistent* arrival-stamp
// table stays a hash map -- it mutates once per group lifetime, not per
// pass.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/scratch.hpp"
#include "echelon/linkcaps.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"

namespace echelon::ef {

struct AaloConfig {
  // First queue holds groups that sent < `base_threshold` bytes; queue k
  // holds < base_threshold * multiplier^k.
  Bytes base_threshold = 10e6;
  double multiplier = 10.0;
  int num_queues = 8;
};

class AaloScheduler final : public netsim::NetworkScheduler {
 public:
  explicit AaloScheduler(AaloConfig config = {}) : config_(config) {}

  void on_flow_arrival(netsim::Simulator& sim,
                       const netsim::Flow& flow) override;
  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;

  [[nodiscard]] std::string name() const override { return "aalo"; }

 private:
  // A group as a [begin, end) range into the flat members_ arena.
  struct Grp {
    std::uint64_t key = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    Bytes sent = 0.0;
    std::uint64_t arrival = 0;
    int queue = 0;
  };

  AaloConfig config_;
  // group id -> arrival order stamp (FIFO within a queue level).
  std::unordered_map<std::uint64_t, std::uint64_t> group_arrival_;
  std::uint64_t arrival_counter_ = 0;

  // --- reusable per-pass arenas (allocation-free after warm-up) ---
  KeySlotMap key_slots_;
  std::vector<Grp> groups_;
  std::vector<netsim::Flow*> members_;
  std::vector<std::uint32_t> order_;
  detail::ResidualCaps caps_;
};

}  // namespace echelon::ef
