// EchelonFlow scheduling: the paper's Property-4 adaptation of MADD.
//
// The one-to-one metric mapping (paper §3.3):
//   Coflow completion time  ->  EchelonFlow tardiness
//
// * Intra-EchelonFlow: instead of pacing all flows to a common completion
//   time, compute the minimal uniform tardiness t* such that every active
//   member can finish by its ideal finish time d_j plus t*, then pace flow j
//   to the deadline d_j + t*. Feasibility per link follows the classic
//   earliest-deadline prefix condition: for members crossing the link in
//   deadline order, sum_{j<=k} remaining_j <= cap * (d_k + t - now) for all
//   k, giving
//       t*_link = max_k ( prefix_bytes_k / cap - (d_k - now) )
//   and t* = max over links (floored at 0 -- we never rush flows *ahead* of
//   the arrangement at the expense of other jobs; see work conservation).
//   On a single bottleneck this reproduces preemptive EDF, which provably
//   minimizes maximum lateness; with recomputation at every arrival and
//   departure the fabric-wide policy is the MADD-style heuristic the paper
//   envisions.
// * Inter-EchelonFlow: EchelonFlows are ranked by achievable tardiness
//   (Eq. 2 metric) -- the analog of Varys' SEBF ordering -- and allocated
//   against residual capacity in rank order.
// * Work conservation: leftover capacity is granted in rank order, one
//   deadline level at a time, scaled proportionally to remaining bytes so a
//   level's flows keep finishing simultaneously (Property 2: with an Eq. 5
//   arrangement -- a single deadline level -- this scheduler degenerates to
//   exactly Coflow-MADD).
//
// Member deadlines come from the EchelonFlow Registry (arrangement function
// + observed reference time). Flows without a registered group fall back to
// d = flow start time (tardiness = flow completion time).

#pragma once

#include "echelon/linkcaps.hpp"
#include "echelon/registry.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"

namespace echelon::ef {

enum class InterRanking {
  // Ascending achievable tardiness: clear the least-behind EchelonFlow first
  // (SEBF analog; minimizes the Eq. 4 sum in the shortest-first sense).
  kSmallestTardinessFirst,
  // Descending: rescue the most-behind EchelonFlow first.
  kLargestTardinessFirst,
};

struct EchelonMaddConfig {
  bool work_conserving = true;
  InterRanking ranking = InterRanking::kSmallestTardinessFirst;
  // Weighted Eq. 4 variant: rank EchelonFlows by achievable tardiness scaled
  // by 1/weight, so a weight-2 EchelonFlow is served as if its tardiness
  // mattered twice as much. Weights come from the registry (paper: "should
  // there be a proper way to assign weights to different DDLT jobs").
  bool use_weights = false;
};

class EchelonMaddScheduler final : public netsim::NetworkScheduler {
 public:
  // `registry` provides arrangement functions and reference times; it must
  // outlive the scheduler and be attached to the same simulator.
  explicit EchelonMaddScheduler(const Registry* registry,
                                EchelonMaddConfig config = {})
      : registry_(registry), config_(config) {}

  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;

  [[nodiscard]] std::string name() const override { return "echelonflow-madd"; }

 private:
  const Registry* registry_;
  EchelonMaddConfig config_;
};

}  // namespace echelon::ef
