// EchelonFlow scheduling: the paper's Property-4 adaptation of MADD.
//
// The one-to-one metric mapping (paper §3.3):
//   Coflow completion time  ->  EchelonFlow tardiness
//
// * Intra-EchelonFlow: instead of pacing all flows to a common completion
//   time, compute the minimal uniform tardiness t* such that every active
//   member can finish by its ideal finish time d_j plus t*, then pace flow j
//   to the deadline d_j + t*. Feasibility per link follows the classic
//   earliest-deadline prefix condition: for members crossing the link in
//   deadline order, sum_{j<=k} remaining_j <= cap * (d_k + t - now) for all
//   k, giving
//       t*_link = max_k ( prefix_bytes_k / cap - (d_k - now) )
//   and t* = max over links (floored at 0 -- we never rush flows *ahead* of
//   the arrangement at the expense of other jobs; see work conservation).
//   On a single bottleneck this reproduces preemptive EDF, which provably
//   minimizes maximum lateness; with recomputation at every arrival and
//   departure the fabric-wide policy is the MADD-style heuristic the paper
//   envisions.
// * Inter-EchelonFlow: EchelonFlows are ranked by achievable tardiness
//   (Eq. 2 metric) -- the analog of Varys' SEBF ordering -- and allocated
//   against residual capacity in rank order.
// * Work conservation: leftover capacity is granted in rank order, one
//   deadline level at a time, scaled proportionally to remaining bytes so a
//   level's flows keep finishing simultaneously (Property 2: with an Eq. 5
//   arrangement -- a single deadline level -- this scheduler degenerates to
//   exactly Coflow-MADD).
//
// Member deadlines come from the EchelonFlow Registry (arrangement function
// + observed reference time). Flows without a registered group fall back to
// d = flow start time (tardiness = flow completion time).
//
// --- Hot-path data layout (see DESIGN.md, "Hot-path data layout") ---------
// control() runs on every flow arrival/departure, so this scheduler is the
// coordinator's scalability ceiling. Two mechanisms keep a steady-state pass
// allocation-free and sort-free:
//
//   1. A *persistent group cache*: groups keyed by EchelonFlowId (or a
//      singleton key for unregistered flows) with members kept
//      deadline-sorted by insertion, updated incrementally in
//      on_flow_arrival / on_flow_departure instead of re-bucketing and
//      re-sorting the whole active set each pass. Every control() pass
//      cheaply validates the cache against the active span (O(active):
//      recompute each flow's (key, deadline) and compare) and falls back to
//      a full rebuild on any mismatch -- so callers that never invoke the
//      hooks (benchmarks, interval coordinators with churn) still get
//      correct results, just with a rebuild on membership-changing passes.
//   2. *Epoch-stamped dense scratch* (common/scratch.hpp, topology/dense.hpp)
//      for all per-link state: residual capacities, EDF prefix loads, and
//      work-conservation level loads. Lazy reset via a generation counter --
//      no hash maps, no O(L) clears, no per-pass allocations after warm-up.
//
// --- Incremental control plane (DESIGN.md §12) -----------------------------
// In SchedMode::kIncremental the group cache above generalizes into a full
// dirty-job-scoped control plane. Each pass is classified by the *era* --
// the pair (Simulator::accounting_generation, Topology::capacity_epoch).
// Within one era every remaining-byte and capacity operand is bitwise
// unchanged, so a group's standalone tardiness and rank key stay valid.
//
//   * era change or all-jobs-dirty  -> the full validated pass (identical to
//     kFullRecompute), which also re-stamps every group's rank cache.
//   * same era, no dirty jobs       -> exact skip: a full pass would rewrite
//     bitwise-identical weights/caps through the compare-and-set setters.
//   * same era, some dirty jobs     -> scoped pass: a union-find over the
//     current member paths partitions groups into link-disjoint components;
//     only components containing a dirty group -- or a link *released* since
//     the last pass by a departure or reroute -- are re-ranked, re-sorted
//     and re-filled against fresh residuals. Link-disjointness makes the
//     per-link fill sequence of a scheduled component identical to its
//     restriction out of a full pass, and untouched components keep their
//     (provably identical) previous caps.
//
// Exactness leans on three invariants: (a) every resolve()-changing event
// marks jobs (the Simulator marks arrivals/completions/fault outcomes and
// setter churn; the Registry escalates create() and reference-time fixes to
// mark_all_jobs_dirty), (b) rank caches are era-stamped and eras are only
// entered through a full pass, and (c) the rank comparator is a total
// order, so sorting a scheduled subset reproduces the full sort's relative
// order. tests/test_churn_equivalence.cpp enforces bit-identical results
// against kFullRecompute across the sched x fabric x chaos matrix.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/pool.hpp"
#include "common/scratch.hpp"
#include "echelon/linkcaps.hpp"
#include "echelon/registry.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"
#include "topology/dense.hpp"

namespace echelon::ef {

enum class InterRanking {
  // Ascending achievable tardiness: clear the least-behind EchelonFlow first
  // (SEBF analog; minimizes the Eq. 4 sum in the shortest-first sense).
  kSmallestTardinessFirst,
  // Descending: rescue the most-behind EchelonFlow first.
  kLargestTardinessFirst,
};

struct EchelonMaddConfig {
  bool work_conserving = true;
  InterRanking ranking = InterRanking::kSmallestTardinessFirst;
  // Weighted Eq. 4 variant: rank EchelonFlows by achievable tardiness scaled
  // by 1/weight, so a weight-2 EchelonFlow is served as if its tardiness
  // mattered twice as much. Weights come from the registry (paper: "should
  // there be a proper way to assign weights to different DDLT jobs").
  bool use_weights = false;
};

class EchelonMaddScheduler final : public netsim::NetworkScheduler {
 public:
  // `registry` provides arrangement functions and reference times; it must
  // outlive the scheduler and be attached to the same simulator.
  explicit EchelonMaddScheduler(const Registry* registry,
                                EchelonMaddConfig config = {})
      : registry_(registry), config_(config) {}

  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;
  void on_flow_arrival(netsim::Simulator& sim,
                       const netsim::Flow& flow) override;
  void on_flow_departure(netsim::Simulator& sim,
                         const netsim::Flow& flow) override;
  void mark_job_dirty(JobId job) override { dirty_.mark(job); }
  void mark_all_jobs_dirty() override { dirty_.mark_all(); }

  [[nodiscard]] std::string name() const override { return "echelonflow-madd"; }

  // --- cache telemetry (tests / perf tracking) -------------------------------
  // Number of full group-cache rebuilds control() had to perform because the
  // cache disagreed with the active set (0 when the arrival/departure hooks
  // are wired up, 1 for hook-less callers' first pass).
  [[nodiscard]] std::uint64_t cache_rebuilds() const noexcept {
    return cache_rebuilds_;
  }
  [[nodiscard]] std::size_t cached_group_count() const noexcept {
    return groups_by_key_.size();
  }

  // Intra-pass parallelism (DESIGN.md §10): run the per-flow group-cache
  // validation -- a pure read-only predicate (resolve() vs the cached
  // (key, deadline)) -- across pool participants, each component of the
  // check confined to one flow. Per-worker flags are AND-merged after the
  // join: a conjunction is order-independent, so the consistency verdict
  // (and thus whether a rebuild runs) is identical to the serial
  // short-circuit walk. All cache mutation stays on the calling thread.
  // threads == 1 or pool == nullptr restores the serial path (the
  // default); threads == 0 uses every pool participant.
  void set_parallelism(ThreadPool* pool, unsigned threads) noexcept {
    pool_ = threads == 1 ? nullptr : pool;
    par_threads_ = threads;
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct CachedMember {
    FlowId id;
    SimTime deadline = 0.0;         // d_j, fixed while the flow is active
    std::uint64_t job = 0;          // owning JobId value (dirty-set matching)
    // Re-bound every pass. Doubles as the *hint* pointer for flows the
    // simulator does not own (bench / harness-driven spans): when
    // id >= sim.flow_count() the hook-time pointer is reused, so such
    // callers must keep their Flow objects address-stable while cached.
    netsim::Flow* flow = nullptr;
  };
  struct GroupSlot {
    std::uint64_t key = 0;
    double weight = 1.0;
    std::vector<CachedMember> members;  // deadline-sorted, arrival order
                                        // within equal deadlines
    // Rank cache, valid while rank_era matches the scheduler's era counter
    // (standalone tardiness depends only on member remaining/deadlines and
    // full link capacities -- all era-constant):
    double tardiness_standalone = 0.0;
    double rank_key = 0.0;
    std::uint64_t rank_era = 0;  // era_seq_ value at last compute (0 = never)
    // Membership changed since the slot was last scheduled: set by the
    // arrival/departure hooks, cleared when the slot is (re)computed.
    bool force_dirty = false;
    // Per-pass transient: this slot matched the dirty set this pass.
    bool pass_dirty = false;
  };
  struct FlowMeta {  // indexed by FlowId; validates the cache each pass
    std::uint32_t slot = kNoSlot;
    std::uint64_t key = 0;
    SimTime deadline = 0.0;
    // Interned route identity at caching time: a fault-driven reroute gives
    // the flow a different RouteId, which cache_valid detects so exactly the
    // rerouted flows re-enter the cache (path bytes are never compared).
    RouteId route;
  };
  struct Resolved {
    std::uint64_t key;
    SimTime deadline;
    double weight;
  };
  struct PerLink {  // EDF prefix state for min_uniform_tardiness
    double prefix_bytes = 0.0;
    double cap = 0.0;
  };

  [[nodiscard]] Resolved resolve(const netsim::Flow& f) const;
  // Pure read-only check that flow `f`'s cache entry still matches what
  // resolve() yields today. Safe to evaluate concurrently for distinct
  // flows: resolve() only reads the registry and immutable arrangement
  // offsets.
  [[nodiscard]] bool cache_valid(const netsim::Flow& f) const;
  void add_to_cache(const netsim::Flow& f);
  void remove_from_cache(const netsim::Flow& f);
  void rebuild_cache(std::span<netsim::Flow*> active);
  double min_uniform_tardiness(const GroupSlot& g, SimTime now,
                               const detail::ResidualCaps* residual,
                               const topology::Topology& topo);
  // MADD fill + work conservation + final backfill over the groups in
  // order_, in order, against freshly reset caps_. Shared by the full and
  // the scoped pass (the scoped pass restricts order_ to one-or-more whole
  // link-disjoint components, which leaves every per-link consume sequence
  // identical to its full-pass counterpart).
  void run_fill(SimTime now, const topology::Topology& topo);
  void full_pass(std::span<netsim::Flow*> active, SimTime now,
                 const topology::Topology& topo);
  // Scoped dirty-component pass; returns false when it detected a condition
  // it cannot handle exactly (resolve drift, un-interned old route) and the
  // caller must fall back to full_pass.
  [[nodiscard]] bool scoped_pass(netsim::Simulator& sim, SimTime now,
                                 const topology::Topology& topo);
  [[nodiscard]] std::uint32_t uf_find(std::uint32_t x) noexcept;

  const Registry* registry_;
  EchelonMaddConfig config_;

  // --- persistent group cache (mutates only on membership changes) ----------
  std::vector<GroupSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<std::uint64_t, std::uint32_t> slot_of_key_;
  std::vector<std::uint32_t> groups_by_key_;  // in-use slots, ascending key
  std::vector<FlowMeta> meta_;                // indexed by FlowId
  std::size_t cached_members_ = 0;
  std::uint64_t cache_rebuilds_ = 0;

  // --- incremental control plane (DESIGN.md §12) -----------------------------
  netsim::DirtyJobSet dirty_;
  // Loopback (empty-path) flows are never grouped but still receive the
  // weight-1/no-cap write each full pass; the scoped pass rewrites exactly
  // the dirty ones through this hook-maintained side list.
  struct LoopbackEntry {
    FlowId id;
    std::uint64_t job = 0;
    netsim::Flow* hint = nullptr;
  };
  std::vector<LoopbackEntry> loopback_;
  // Links whose capacity was freed since the last pass: departures append
  // the departing flow's path here, and the scoped pass appends rerouted
  // members' *old* interned paths. Each one re-dirties the component that
  // currently owns it (freed capacity changes that component's backfill).
  std::vector<LinkId> released_links_;
  std::uint32_t forced_slots_ = 0;  // slots with force_dirty set
  // Era tracking: era_seq_ bumps whenever the observed
  // (accounting_generation, capacity_epoch) pair moves; rank caches stamp
  // against it. The sentinel makes the first pass an era change.
  std::uint64_t era_seq_ = 0;
  std::uint64_t last_acc_gen_ = ~0ull;
  std::uint64_t last_cap_epoch_ = ~0ull;
  // Per-pass union-find over slot ids, threaded through a link-owner
  // scratch (first slot seen on a link owns it; later slots union in).
  topology::LinkScratch<std::uint32_t> owner_scratch_;
  std::vector<std::uint32_t> uf_parent_;
  std::vector<std::uint8_t> root_dirty_;
  std::vector<std::uint32_t> dirty_slot_list_;

  // --- per-pass arenas (allocation-free after warm-up) -----------------------
  detail::ResidualCaps caps_;
  EpochScratch<netsim::Flow*> flow_ptr_;      // FlowId -> active Flow*
  topology::LinkScratch<PerLink> tard_scratch_;
  topology::LinkScratch<double> load_scratch_;
  std::vector<std::uint32_t> order_;          // per-pass group rank order

  // --- intra-pass parallelism (DESIGN.md §10) --------------------------------
  // Validation only goes wide when the active span is large enough that the
  // dispatch overhead pays for itself; below the batch floor the serial walk
  // runs. The cutoff cannot affect results: both paths compute the same
  // conjunction over the same pure predicate.
  static constexpr std::size_t kParallelValidateBatch = 512;
  ThreadPool* pool_ = nullptr;
  unsigned par_threads_ = 1;
  WorkerScratch<std::uint8_t> valid_scratch_;  // per-worker "all valid" flags
};

}  // namespace echelon::ef
