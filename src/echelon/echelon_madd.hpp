// EchelonFlow scheduling: the paper's Property-4 adaptation of MADD.
//
// The one-to-one metric mapping (paper §3.3):
//   Coflow completion time  ->  EchelonFlow tardiness
//
// * Intra-EchelonFlow: instead of pacing all flows to a common completion
//   time, compute the minimal uniform tardiness t* such that every active
//   member can finish by its ideal finish time d_j plus t*, then pace flow j
//   to the deadline d_j + t*. Feasibility per link follows the classic
//   earliest-deadline prefix condition: for members crossing the link in
//   deadline order, sum_{j<=k} remaining_j <= cap * (d_k + t - now) for all
//   k, giving
//       t*_link = max_k ( prefix_bytes_k / cap - (d_k - now) )
//   and t* = max over links (floored at 0 -- we never rush flows *ahead* of
//   the arrangement at the expense of other jobs; see work conservation).
//   On a single bottleneck this reproduces preemptive EDF, which provably
//   minimizes maximum lateness; with recomputation at every arrival and
//   departure the fabric-wide policy is the MADD-style heuristic the paper
//   envisions.
// * Inter-EchelonFlow: EchelonFlows are ranked by achievable tardiness
//   (Eq. 2 metric) -- the analog of Varys' SEBF ordering -- and allocated
//   against residual capacity in rank order.
// * Work conservation: leftover capacity is granted in rank order, one
//   deadline level at a time, scaled proportionally to remaining bytes so a
//   level's flows keep finishing simultaneously (Property 2: with an Eq. 5
//   arrangement -- a single deadline level -- this scheduler degenerates to
//   exactly Coflow-MADD).
//
// Member deadlines come from the EchelonFlow Registry (arrangement function
// + observed reference time). Flows without a registered group fall back to
// d = flow start time (tardiness = flow completion time).
//
// --- Hot-path data layout (see DESIGN.md, "Hot-path data layout") ---------
// control() runs on every flow arrival/departure, so this scheduler is the
// coordinator's scalability ceiling. Two mechanisms keep a steady-state pass
// allocation-free and sort-free:
//
//   1. A *persistent group cache*: groups keyed by EchelonFlowId (or a
//      singleton key for unregistered flows) with members kept
//      deadline-sorted by insertion, updated incrementally in
//      on_flow_arrival / on_flow_departure instead of re-bucketing and
//      re-sorting the whole active set each pass. Every control() pass
//      cheaply validates the cache against the active span (O(active):
//      recompute each flow's (key, deadline) and compare) and falls back to
//      a full rebuild on any mismatch -- so callers that never invoke the
//      hooks (benchmarks, interval coordinators with churn) still get
//      correct results, just with a rebuild on membership-changing passes.
//   2. *Epoch-stamped dense scratch* (common/scratch.hpp, topology/dense.hpp)
//      for all per-link state: residual capacities, EDF prefix loads, and
//      work-conservation level loads. Lazy reset via a generation counter --
//      no hash maps, no O(L) clears, no per-pass allocations after warm-up.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/pool.hpp"
#include "common/scratch.hpp"
#include "echelon/linkcaps.hpp"
#include "echelon/registry.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"
#include "topology/dense.hpp"

namespace echelon::ef {

enum class InterRanking {
  // Ascending achievable tardiness: clear the least-behind EchelonFlow first
  // (SEBF analog; minimizes the Eq. 4 sum in the shortest-first sense).
  kSmallestTardinessFirst,
  // Descending: rescue the most-behind EchelonFlow first.
  kLargestTardinessFirst,
};

struct EchelonMaddConfig {
  bool work_conserving = true;
  InterRanking ranking = InterRanking::kSmallestTardinessFirst;
  // Weighted Eq. 4 variant: rank EchelonFlows by achievable tardiness scaled
  // by 1/weight, so a weight-2 EchelonFlow is served as if its tardiness
  // mattered twice as much. Weights come from the registry (paper: "should
  // there be a proper way to assign weights to different DDLT jobs").
  bool use_weights = false;
};

class EchelonMaddScheduler final : public netsim::NetworkScheduler {
 public:
  // `registry` provides arrangement functions and reference times; it must
  // outlive the scheduler and be attached to the same simulator.
  explicit EchelonMaddScheduler(const Registry* registry,
                                EchelonMaddConfig config = {})
      : registry_(registry), config_(config) {}

  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;
  void on_flow_arrival(netsim::Simulator& sim,
                       const netsim::Flow& flow) override;
  void on_flow_departure(netsim::Simulator& sim,
                         const netsim::Flow& flow) override;

  [[nodiscard]] std::string name() const override { return "echelonflow-madd"; }

  // --- cache telemetry (tests / perf tracking) -------------------------------
  // Number of full group-cache rebuilds control() had to perform because the
  // cache disagreed with the active set (0 when the arrival/departure hooks
  // are wired up, 1 for hook-less callers' first pass).
  [[nodiscard]] std::uint64_t cache_rebuilds() const noexcept {
    return cache_rebuilds_;
  }
  [[nodiscard]] std::size_t cached_group_count() const noexcept {
    return groups_by_key_.size();
  }

  // Intra-pass parallelism (DESIGN.md §10): run the per-flow group-cache
  // validation -- a pure read-only predicate (resolve() vs the cached
  // (key, deadline)) -- across pool participants, each component of the
  // check confined to one flow. Per-worker flags are AND-merged after the
  // join: a conjunction is order-independent, so the consistency verdict
  // (and thus whether a rebuild runs) is identical to the serial
  // short-circuit walk. All cache mutation stays on the calling thread.
  // threads == 1 or pool == nullptr restores the serial path (the
  // default); threads == 0 uses every pool participant.
  void set_parallelism(ThreadPool* pool, unsigned threads) noexcept {
    pool_ = threads == 1 ? nullptr : pool;
    par_threads_ = threads;
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct CachedMember {
    FlowId id;
    SimTime deadline = 0.0;        // d_j, fixed while the flow is active
    netsim::Flow* flow = nullptr;  // re-bound every control() pass
  };
  struct GroupSlot {
    std::uint64_t key = 0;
    double weight = 1.0;
    std::vector<CachedMember> members;  // deadline-sorted, arrival order
                                        // within equal deadlines
    // Per-pass scratch:
    double tardiness_standalone = 0.0;
    double rank_key = 0.0;
  };
  struct FlowMeta {  // indexed by FlowId; validates the cache each pass
    std::uint32_t slot = kNoSlot;
    std::uint64_t key = 0;
    SimTime deadline = 0.0;
    // Interned route identity at caching time: a fault-driven reroute gives
    // the flow a different RouteId, which cache_valid detects so exactly the
    // rerouted flows re-enter the cache (path bytes are never compared).
    RouteId route;
  };
  struct Resolved {
    std::uint64_t key;
    SimTime deadline;
    double weight;
  };
  struct PerLink {  // EDF prefix state for min_uniform_tardiness
    double prefix_bytes = 0.0;
    double cap = 0.0;
  };

  [[nodiscard]] Resolved resolve(const netsim::Flow& f) const;
  // Pure read-only check that flow `f`'s cache entry still matches what
  // resolve() yields today. Safe to evaluate concurrently for distinct
  // flows: resolve() only reads the registry and immutable arrangement
  // offsets.
  [[nodiscard]] bool cache_valid(const netsim::Flow& f) const;
  void add_to_cache(const netsim::Flow& f);
  void remove_from_cache(const netsim::Flow& f);
  void rebuild_cache(std::span<netsim::Flow*> active);
  double min_uniform_tardiness(const GroupSlot& g, SimTime now,
                               const detail::ResidualCaps* residual,
                               const topology::Topology& topo);

  const Registry* registry_;
  EchelonMaddConfig config_;

  // --- persistent group cache (mutates only on membership changes) ----------
  std::vector<GroupSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<std::uint64_t, std::uint32_t> slot_of_key_;
  std::vector<std::uint32_t> groups_by_key_;  // in-use slots, ascending key
  std::vector<FlowMeta> meta_;                // indexed by FlowId
  std::size_t cached_members_ = 0;
  std::uint64_t cache_rebuilds_ = 0;

  // --- per-pass arenas (allocation-free after warm-up) -----------------------
  detail::ResidualCaps caps_;
  EpochScratch<netsim::Flow*> flow_ptr_;      // FlowId -> active Flow*
  topology::LinkScratch<PerLink> tard_scratch_;
  topology::LinkScratch<double> load_scratch_;
  std::vector<std::uint32_t> order_;          // per-pass group rank order

  // --- intra-pass parallelism (DESIGN.md §10) --------------------------------
  // Validation only goes wide when the active span is large enough that the
  // dispatch overhead pays for itself; below the batch floor the serial walk
  // runs. The cutoff cannot affect results: both paths compute the same
  // conjunction over the same pure predicate.
  static constexpr std::size_t kParallelValidateBatch = 512;
  ThreadPool* pool_ = nullptr;
  unsigned par_threads_ = 1;
  WorkerScratch<std::uint8_t> valid_scratch_;  // per-worker "all valid" flags
};

}  // namespace echelon::ef
