#include "echelon/srpt.hpp"

#include <algorithm>
#include <cmath>

namespace echelon::ef {

void SrptScheduler::on_flow_departure(netsim::Simulator&,
                                      const netsim::Flow& flow) {
  // Freed capacity: the component owning these links at the next scoped
  // pass water-fills differently and must be re-filled.
  for (LinkId lid : flow.path) released_links_.push_back(lid);
}

std::uint32_t SrptScheduler::uf_find(std::uint32_t x) noexcept {
  while (uf_parent_[x] != x) {  // path halving
    uf_parent_[x] = uf_parent_[uf_parent_[x]];
    x = uf_parent_[x];
  }
  return x;
}

void SrptScheduler::control(netsim::Simulator& sim,
                            std::span<netsim::Flow*> active) {
  ++stats_.passes;
  const topology::Topology& topo = sim.topology();
  const std::uint64_t acc = sim.accounting_generation();
  const std::uint64_t cap = topo.capacity_epoch();
  const bool same_era = acc == last_acc_gen_ && cap == last_cap_epoch_;
  last_acc_gen_ = acc;
  last_cap_epoch_ = cap;
  const bool incremental = sched_mode_ == netsim::SchedMode::kIncremental;
  if (incremental && same_era && dirty_.empty() && released_links_.empty()) {
    // Exact skip: nothing moved, a full pass would rewrite identical values.
    ++stats_.pass_skips;
    return;
  }
  const bool scoped = incremental && same_era && !dirty_.all();

  routed_.clear();
  for (netsim::Flow* f : active) {
    if (f->path.empty()) {
      f->set_weight(1.0);
      f->clear_rate_cap();
      continue;
    }
    routed_.push_back(f);
  }

  if (scoped) {
    dirty_.prepare();
    // Link-disjoint flow components: flow rates only couple through shared
    // links, so only the components containing a dirty job -- or owning a
    // link released by a departure -- can change.
    const std::uint32_t n = static_cast<std::uint32_t>(routed_.size());
    owner_scratch_.begin_pass(topo);
    if (uf_parent_.size() < n) uf_parent_.resize(n);
    if (root_dirty_.size() < n) root_dirty_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) uf_parent_[i] = i;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (LinkId lid : routed_[i]->path) {
        const std::uint32_t owner = owner_scratch_.touch(lid, i);
        if (owner != i) {
          const std::uint32_t ra = uf_find(i);
          const std::uint32_t rb = uf_find(owner);
          if (ra != rb) uf_parent_[ra] = rb;
        }
      }
    }
    std::fill(root_dirty_.begin(), root_dirty_.begin() + n, std::uint8_t{0});
    for (std::uint32_t i = 0; i < n; ++i) {
      if (dirty_.contains(routed_[i]->spec.job.value())) {
        root_dirty_[uf_find(i)] = 1;
      }
    }
    for (LinkId lid : released_links_) {
      if (owner_scratch_.active(lid)) {
        root_dirty_[uf_find(owner_scratch_.at(lid))] = 1;
      }
    }
    order_.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (root_dirty_[uf_find(i)] != 0) order_.push_back(routed_[i]);
    }
    stats_.groups_seen += n;
    stats_.groups_scheduled += order_.size();
    ++stats_.scoped_passes;
  } else {
    order_.assign(routed_.begin(), routed_.end());
    ++stats_.full_passes;
  }
  dirty_.clear();
  released_links_.clear();

  // (remaining, id) is a total order, so plain std::sort suffices (and,
  // unlike stable_sort, allocates no merge buffer) -- and sorting the
  // scoped subset reproduces the full sort's relative order.
  std::sort(order_.begin(), order_.end(),
            [](const netsim::Flow* a, const netsim::Flow* b) {
              if (a->remaining != b->remaining) {
                return a->remaining < b->remaining;
              }
              return a->id < b->id;  // deterministic tie-break
            });

  caps_.reset(&topo);
  for (netsim::Flow* f : order_) {
    const double rate = caps_.path_residual(*f);
    f->set_weight(1.0);
    f->set_rate_cap(std::isfinite(rate) ? rate : 0.0);
    caps_.consume(*f, f->rate_cap.value());
  }
}

}  // namespace echelon::ef
