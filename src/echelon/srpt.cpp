#include "echelon/srpt.hpp"

#include <algorithm>
#include <vector>

namespace echelon::ef {

void SrptScheduler::control(netsim::Simulator& sim,
                            std::span<netsim::Flow*> active) {
  std::vector<netsim::Flow*> order;
  order.reserve(active.size());
  for (netsim::Flow* f : active) {
    if (f->path.empty()) {
      f->weight = 1.0;
      f->rate_cap.reset();
      continue;
    }
    order.push_back(f);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const netsim::Flow* a, const netsim::Flow* b) {
                     if (a->remaining != b->remaining) {
                       return a->remaining < b->remaining;
                     }
                     return a->id < b->id;  // deterministic tie-break
                   });

  detail::ResidualCaps caps(&sim.topology());
  for (netsim::Flow* f : order) {
    const double rate = caps.path_residual(*f);
    f->weight = 1.0;
    f->rate_cap = std::isfinite(rate) ? rate : 0.0;
    caps.consume(*f, f->rate_cap.value());
  }
}

}  // namespace echelon::ef
