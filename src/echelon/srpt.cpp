#include "echelon/srpt.hpp"

#include <algorithm>

namespace echelon::ef {

void SrptScheduler::control(netsim::Simulator& sim,
                            std::span<netsim::Flow*> active) {
  order_.clear();
  for (netsim::Flow* f : active) {
    if (f->path.empty()) {
      f->set_weight(1.0);
      f->clear_rate_cap();
      continue;
    }
    order_.push_back(f);
  }
  // (remaining, id) is a total order, so plain std::sort suffices (and,
  // unlike stable_sort, allocates no merge buffer).
  std::sort(order_.begin(), order_.end(),
            [](const netsim::Flow* a, const netsim::Flow* b) {
              if (a->remaining != b->remaining) {
                return a->remaining < b->remaining;
              }
              return a->id < b->id;  // deterministic tie-break
            });

  caps_.reset(&sim.topology());
  for (netsim::Flow* f : order_) {
    const double rate = caps_.path_residual(*f);
    f->set_weight(1.0);
    f->set_rate_cap(std::isfinite(rate) ? rate : 0.0);
    caps_.consume(*f, f->rate_cap.value());
  }
}

}  // namespace echelon::ef
