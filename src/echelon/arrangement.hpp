// Arrangement functions (paper §3.1-§3.2, §4).
//
// An arrangement function g(D, r) encodes the "shape" and "distance" of a
// training paradigm's computation pattern: given the EchelonFlow's reference
// time r (the start time of its head flow), it yields the ideal finish time
// d_j of every flow. We represent g as a vector of per-flow *offsets* from
// the reference time: d_j = r + offset_j. This covers every case study in
// the paper:
//
//   Coflow   (Eq. 5): offset_j = 0                       -- all equal
//   Pipeline (Eq. 6): offset_j = j * T                   -- staggered by T
//   FSDP     (Eq. 7): offset by *stage* (the Coflow index i), accumulating
//                     T_fwd through the forward layers and T_bwd through the
//                     backward layers; all flows of one stage share d_ci
//   Generic DAG     : arbitrary profiled offsets
//
// Offsets are immutable once built; the runtime EchelonFlow object combines
// them with the observed reference time (Fig. 6's recalibration).

#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"

namespace echelon::ef {

class Arrangement {
 public:
  Arrangement() = default;

  // --- factories -----------------------------------------------------------

  // Eq. 5: n flows with a common ideal finish time (classic Coflow).
  [[nodiscard]] static Arrangement coflow(int n);

  // Eq. 6: n flows staggered by the per-micro-batch computation time T.
  [[nodiscard]] static Arrangement pipeline(int n, Duration T);

  // Eq. 7: 2*n_layers stages (forward then backward), each stage holding
  // `flows_per_stage` flows that share an ideal finish time; consecutive
  // forward stages are T_fwd apart and backward stages T_bwd apart.
  [[nodiscard]] static Arrangement fsdp(int n_layers, int flows_per_stage,
                                        Duration t_fwd, Duration t_bwd);

  // Generic: one offset per flow, in flow-index order. Offsets must be
  // non-decreasing (flows are indexed by ascending start/ideal-finish time).
  [[nodiscard]] static Arrangement from_offsets(std::vector<Duration> offsets);

  // Staged generic form: stage_sizes[i] flows share offset stage_offsets[i].
  [[nodiscard]] static Arrangement staged(
      const std::vector<int>& stage_sizes,
      const std::vector<Duration>& stage_offsets);

  // --- queries --------------------------------------------------------------

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(offsets_.size());
  }
  [[nodiscard]] Duration offset(int j) const { return offsets_.at(j); }
  [[nodiscard]] const std::vector<Duration>& offsets() const noexcept {
    return offsets_;
  }

  // Table 1's "CoFlow compliance": true iff all ideal finish times coincide.
  [[nodiscard]] bool is_coflow_compliant() const noexcept;

  // Human-readable classification for reports: "same finish time",
  // "staggered finish time", or "staggered stage finish time".
  [[nodiscard]] std::string describe() const;

 private:
  explicit Arrangement(std::vector<Duration> offsets)
      : offsets_(std::move(offsets)) {}

  std::vector<Duration> offsets_;
};

}  // namespace echelon::ef
