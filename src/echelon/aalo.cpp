#include "echelon/aalo.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace echelon::ef {

void AaloScheduler::on_flow_arrival(netsim::Simulator&,
                                    const netsim::Flow& flow) {
  const std::uint64_t key = flow.spec.group.valid()
                                ? flow.spec.group.value()
                                : (1ULL << 63) | flow.id.value();
  group_arrival_.try_emplace(key, arrival_counter_++);
}

void AaloScheduler::control(netsim::Simulator& sim,
                            std::span<netsim::Flow*> active) {
  struct Group {
    std::vector<netsim::Flow*> flows;
    Bytes sent = 0.0;
    std::uint64_t arrival = 0;
    int queue = 0;
  };
  std::map<std::uint64_t, Group> groups;
  for (netsim::Flow* f : active) {
    if (f->path.empty()) {
      f->weight = 1.0;
      f->rate_cap.reset();
      continue;
    }
    const std::uint64_t key = f->spec.group.valid()
                                  ? f->spec.group.value()
                                  : (1ULL << 63) | f->id.value();
    Group& g = groups[key];
    g.flows.push_back(f);
    // Observable bytes only: what this group's *active* flows have put on
    // the wire. (Finished flows of long-lived groups age the group upward
    // implicitly through arrival order, as in Aalo's per-epoch reset.)
    g.sent += f->spec.size - f->remaining;
    const auto it = group_arrival_.find(key);
    g.arrival = it != group_arrival_.end() ? it->second : arrival_counter_;
  }

  // Queue level from sent bytes: level k iff sent >= base * multiplier^k.
  std::vector<Group*> order;
  order.reserve(groups.size());
  for (auto& [key, g] : groups) {
    (void)key;
    double threshold = config_.base_threshold;
    int q = 0;
    while (q < config_.num_queues - 1 && g.sent >= threshold) {
      threshold *= config_.multiplier;
      ++q;
    }
    g.queue = q;
    order.push_back(&g);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Group* a, const Group* b) {
                     if (a->queue != b->queue) return a->queue < b->queue;
                     return a->arrival < b->arrival;  // FIFO within a level
                   });

  // Strict priority across the order; flows of one group water-fill.
  detail::ResidualCaps caps(&sim.topology());
  for (Group* g : order) {
    for (netsim::Flow* f : g->flows) {
      const double rate = caps.path_residual(*f);
      f->weight = 1.0;
      f->rate_cap = std::isfinite(rate) ? rate : 0.0;
      caps.consume(*f, *f->rate_cap);
    }
  }
}

}  // namespace echelon::ef
