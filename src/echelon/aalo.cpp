#include "echelon/aalo.hpp"

#include <algorithm>
#include <cmath>

namespace echelon::ef {

namespace {

[[nodiscard]] std::uint64_t group_key(const netsim::Flow& f) {
  return f.spec.group.valid() ? f.spec.group.value()
                              : (1ULL << 63) | f.id.value();
}

}  // namespace

void AaloScheduler::on_flow_arrival(netsim::Simulator&,
                                    const netsim::Flow& flow) {
  group_arrival_.try_emplace(group_key(flow), arrival_counter_++);
}

void AaloScheduler::control(netsim::Simulator& sim,
                            std::span<netsim::Flow*> active) {
  // --- group by coflow id (two-pass counting into the flat arena) -----------
  groups_.clear();
  key_slots_.begin_pass(active.size());
  std::size_t routed = 0;
  for (netsim::Flow* f : active) {
    if (f->path.empty()) {
      f->set_weight(1.0);
      f->clear_rate_cap();
      continue;
    }
    ++routed;
    bool inserted = false;
    std::uint32_t& slot = key_slots_.find_or_insert(group_key(*f), inserted);
    if (inserted) {
      slot = static_cast<std::uint32_t>(groups_.size());
      Grp g;
      g.key = group_key(*f);
      const auto it = group_arrival_.find(g.key);
      g.arrival = it != group_arrival_.end() ? it->second : arrival_counter_;
      groups_.push_back(g);
    }
    ++groups_[slot].end;  // member count; converted to offsets below
  }
  members_.resize(routed);
  std::uint32_t running = 0;
  for (Grp& g : groups_) {
    const std::uint32_t count = g.end;
    g.begin = running;
    g.end = running;  // fill cursor
    running += count;
  }
  for (netsim::Flow* f : active) {
    if (f->path.empty()) continue;
    const std::uint32_t slot = *key_slots_.find(group_key(*f));
    Grp& g = groups_[slot];
    members_[g.end++] = f;
    // Observable bytes only: what this group's *active* flows have put on
    // the wire. (Finished flows of long-lived groups age the group upward
    // implicitly through arrival order, as in Aalo's per-epoch reset.)
    // Accumulated in span order, matching the seed bit-for-bit.
    g.sent += f->spec.size - f->remaining;
  }

  // Queue level from sent bytes: level k iff sent >= base * multiplier^k.
  order_.clear();
  for (std::uint32_t i = 0; i < groups_.size(); ++i) {
    Grp& g = groups_[i];
    double threshold = config_.base_threshold;
    int q = 0;
    while (q < config_.num_queues - 1 && g.sent >= threshold) {
      threshold *= config_.multiplier;
      ++q;
    }
    g.queue = q;
    order_.push_back(i);
  }
  // (queue, arrival, key): FIFO within a level; key ascending replicates the
  // seed's stable_sort over its key-ascending std::map for the degenerate
  // hook-less case where arrival stamps tie.
  std::sort(order_.begin(), order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const Grp& ga = groups_[a];
              const Grp& gb = groups_[b];
              if (ga.queue != gb.queue) return ga.queue < gb.queue;
              if (ga.arrival != gb.arrival) return ga.arrival < gb.arrival;
              return ga.key < gb.key;
            });

  // Strict priority across the order; flows of one group water-fill.
  caps_.reset(&sim.topology());
  for (const std::uint32_t gi : order_) {
    const Grp& g = groups_[gi];
    for (std::uint32_t i = g.begin; i < g.end; ++i) {
      netsim::Flow* f = members_[i];
      const double rate = caps_.path_residual(*f);
      f->set_weight(1.0);
      f->set_rate_cap(std::isfinite(rate) ? rate : 0.0);
      caps_.consume(*f, *f->rate_cap);
    }
  }
}

}  // namespace echelon::ef
