#include "echelon/exhaustive.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace echelon::ef {

namespace {

// Shared event loop: `pick` selects the running flow among released,
// unfinished indices at each decision instant.
template <typename Pick>
std::vector<SimTime> simulate(const std::vector<MiniFlow>& flows,
                              BytesPerSec cap, Pick pick) {
  const std::size_t n = flows.size();
  std::vector<SimTime> finish(n, kTimeInfinity);
  std::vector<Bytes> rem(n);
  for (std::size_t i = 0; i < n; ++i) rem[i] = flows[i].size;

  SimTime now = 0.0;
  std::size_t done = 0;
  // Flows with zero bytes finish at their release instant.
  for (std::size_t i = 0; i < n; ++i) {
    if (rem[i] <= 0.0) {
      finish[i] = flows[i].release;
      ++done;
    }
  }
  while (done < n) {
    // Candidate set: released and unfinished.
    int run = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (finish[i] < kTimeInfinity || flows[i].release > now + kTimeEpsilon) {
        continue;
      }
      if (run < 0 || pick(static_cast<int>(i), run)) run = static_cast<int>(i);
    }
    if (run < 0) {
      // Idle: jump to the next release.
      SimTime next = kTimeInfinity;
      for (std::size_t i = 0; i < n; ++i) {
        if (finish[i] == kTimeInfinity) {
          next = std::min(next, flows[i].release);
        }
      }
      assert(next < kTimeInfinity);
      now = next;
      continue;
    }
    // Run `run` at full cap until it finishes or the next release (which may
    // change the priority winner).
    SimTime horizon = now + rem[static_cast<std::size_t>(run)] / cap;
    for (std::size_t i = 0; i < n; ++i) {
      if (finish[i] == kTimeInfinity && flows[i].release > now + kTimeEpsilon) {
        horizon = std::min(horizon, flows[i].release);
      }
    }
    rem[static_cast<std::size_t>(run)] -= cap * (horizon - now);
    now = horizon;
    if (rem[static_cast<std::size_t>(run)] <= 1e-9) {
      finish[static_cast<std::size_t>(run)] = now;
      ++done;
    }
  }
  return finish;
}

}  // namespace

std::vector<SimTime> simulate_priority(const std::vector<MiniFlow>& flows,
                                       const std::vector<int>& order,
                                       BytesPerSec cap) {
  assert(order.size() == flows.size());
  std::vector<int> prio(flows.size());
  for (std::size_t p = 0; p < order.size(); ++p) {
    prio[static_cast<std::size_t>(order[p])] = static_cast<int>(p);
  }
  return simulate(flows, cap, [&prio](int a, int b) {
    return prio[static_cast<std::size_t>(a)] <
           prio[static_cast<std::size_t>(b)];
  });
}

std::vector<SimTime> simulate_edf(const std::vector<MiniFlow>& flows,
                                  BytesPerSec cap) {
  return simulate(flows, cap, [&flows](int a, int b) {
    return flows[static_cast<std::size_t>(a)].deadline <
           flows[static_cast<std::size_t>(b)].deadline;
  });
}

double max_tardiness(const std::vector<MiniFlow>& flows,
                     const std::vector<SimTime>& finish) {
  double t = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    t = std::max(t, finish[i] - flows[i].deadline);
  }
  return t;
}

ExhaustiveResult exhaustive_best(const std::vector<MiniFlow>& flows,
                                 BytesPerSec cap, const Objective& objective) {
  assert(flows.size() <= 10 && "factorial search; keep instances tiny");
  std::vector<int> order(flows.size());
  std::iota(order.begin(), order.end(), 0);

  ExhaustiveResult best;
  best.objective = std::numeric_limits<double>::infinity();
  do {
    std::vector<SimTime> finish = simulate_priority(flows, order, cap);
    const double obj = objective(finish);
    if (obj < best.objective) {
      best.objective = obj;
      best.order = order;
      best.finish = std::move(finish);
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

}  // namespace echelon::ef
