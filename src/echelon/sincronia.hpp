// Sincronia-style coflow ordering (Agarwal et al., SIGCOMM'18), cited by
// the paper among the Coflow schedulers EchelonFlow generalizes.
//
// Sincronia's key result: a good *order* plus any work-conserving,
// order-respecting rate allocation is a 4-approximation for average coflow
// completion time. The order comes from BSSI (Bottleneck-Select-Scale-
// Iterate): repeatedly find the most-bottlenecked port, schedule the coflow
// with the largest remaining bytes on that port *last*, remove it, iterate.
// Rates then water-fill greedily in order.
//
// Included as a second clairvoyant Coflow baseline beside Varys-style
// SEBF+MADD: it optimizes average CCT rather than per-coflow pacing.
//
// Incremental mode (DESIGN.md §12): skip-only. BSSI's bottleneck argmax
// breaks ties on unordered_map iteration order, so its order does not
// decompose into link-disjoint components we could recompute in isolation
// (removing a coflow can flip argmax ties fabric-wide). What *is* exact is
// the no-op skip: within one era with no dirty jobs, a full pass would
// rewrite bitwise-identical values through the compare-and-set setters.

#pragma once

#include "echelon/linkcaps.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"

namespace echelon::ef {

class SincroniaScheduler final : public netsim::NetworkScheduler {
 public:
  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;
  void mark_job_dirty(JobId job) override { dirty_.mark(job); }
  void mark_all_jobs_dirty() override { dirty_.mark_all(); }

  [[nodiscard]] std::string name() const override { return "sincronia"; }

 private:
  // Arena-backed residual port state (allocation-free after warm-up). The
  // BSSI ordering itself keeps its per-pass hash maps: its bottleneck argmax
  // ties break on map iteration order, so converting it to dense touched
  // lists would silently change schedules -- deferred until goldens bless a
  // deterministic tie-break.
  detail::ResidualCaps caps_;

  netsim::DirtyJobSet dirty_;
  std::uint64_t last_acc_gen_ = ~0ull;
  std::uint64_t last_cap_epoch_ = ~0ull;
};

}  // namespace echelon::ef
