#!/usr/bin/env python3
"""Line-coverage ratchet for the service and netsim subsystems.

Walks a --coverage (gcc/gcov) build tree for .gcda counter files, runs gcov
on each object's counters, aggregates "Lines executed" per tracked source
prefix, and fails if any tracked subsystem drops below its ratchet floor.
The floors are deliberately below the currently-measured numbers (they gate
*erosion*, not noise): raise them when new tests land, never lower them to
make a regression pass.

Usage (after building with CMAKE_CXX_FLAGS=--coverage and running ctest):
  python3 tools/check_coverage.py --build-dir build-coverage \
      --summary-out coverage_summary.txt

Exit status: 0 = all tracked prefixes at/above their floor, 1 = a floor was
broken (or a tracked prefix has no coverage data at all), 2 = usage/IO
error.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

# Tracked source prefixes (repo-relative) and their line-coverage ratchet
# floors, in percent. src/service is the subject of the online-service PR
# (tests/test_service.cpp drives every layer of it); src/netsim is the
# simulator core underneath it.
# Measured on the CI test set at floor-setting time: src/service 87.1%,
# src/netsim 89.2% -- floors sit a few points below to absorb noise.
FLOORS = {
    "src/service": 82.0,
    "src/netsim": 80.0,
    # Telemetry/exporter layer (DESIGN.md §15): driven by test_obs and
    # tests/test_service_telemetry.cpp.
    "src/obs": 80.0,
}

FILE_RE = re.compile(r"^File '(?P<path>[^']+)'")
LINES_RE = re.compile(
    r"^Lines executed:(?P<pct>[0-9.]+)% of (?P<count>\d+)")


def find_gcda(build_dir):
    out = []
    # Absolute paths: gcov runs from a scratch cwd (it litters *.gcov files
    # otherwise), so relative .gcda paths would not resolve from there.
    for root, _dirs, files in os.walk(os.path.abspath(build_dir)):
        out.extend(os.path.join(root, f) for f in files if f.endswith(".gcda"))
    return out


def normalize(path, repo_root):
    """gcov reports paths as written into the .gcno (absolute or
    build-relative); map them back to repo-relative."""
    p = os.path.normpath(path)
    if not os.path.isabs(p):
        return p.lstrip("./")
    try:
        return os.path.relpath(p, repo_root)
    except ValueError:
        return p


def collect(build_dir, repo_root):
    """(repo-relative source path -> (covered_lines, total_lines)), taking
    the best-covered record when a header shows up in many objects."""
    per_file = {}
    gcdas = find_gcda(build_dir)
    if not gcdas:
        print(f"error: no .gcda files under {build_dir} -- build with "
              "--coverage and run the tests first", file=sys.stderr)
        sys.exit(2)
    with tempfile.TemporaryDirectory() as scratch:
        for gcda in gcdas:
            proc = subprocess.run(
                ["gcov", "-n", gcda],
                cwd=scratch, capture_output=True, text=True, check=False)
            current = None
            for line in proc.stdout.splitlines():
                m = FILE_RE.match(line)
                if m:
                    current = normalize(m.group("path"), repo_root)
                    continue
                m = LINES_RE.match(line)
                if m and current is not None:
                    total = int(m.group("count"))
                    covered = round(float(m.group("pct")) / 100.0 * total)
                    old = per_file.get(current)
                    # The same header/template instantiates differently per
                    # TU; keep the most-covered view (the union is what the
                    # whole test run achieved, this is its lower bound).
                    if old is None or covered > old[0]:
                        per_file[current] = (covered, total)
                    current = None
    return per_file


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--repo-root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--summary-out", default="",
                    help="also write the per-file table to this path")
    args = ap.parse_args()

    per_file = collect(args.build_dir, args.repo_root)

    lines = []
    failures = []
    for prefix, floor in sorted(FLOORS.items()):
        tracked = {p: v for p, v in per_file.items()
                   if p.startswith(prefix + "/")}
        covered = sum(c for c, _ in tracked.values())
        total = sum(t for _, t in tracked.values())
        if total == 0:
            failures.append(f"{prefix}: no coverage data recorded")
            lines.append(f"{prefix}: NO DATA (floor {floor:.0f}%)")
            continue
        pct = 100.0 * covered / total
        status = "ok" if pct >= floor else "BELOW FLOOR"
        if pct < floor:
            failures.append(
                f"{prefix}: {pct:.2f}% < floor {floor:.0f}%")
        lines.append(f"{prefix}: {pct:.2f}% line coverage "
                     f"({covered}/{total} lines, floor {floor:.0f}%) {status}")
        for path in sorted(tracked):
            c, t = tracked[path]
            lines.append(f"  {path:<44} {100.0 * c / max(t, 1):6.2f}%  "
                         f"({c}/{t})")

    report = "\n".join(lines) + "\n"
    print(report, end="")
    if args.summary_out:
        with open(args.summary_out, "w") as f:
            f.write(report)

    if failures:
        print("\nFAIL: coverage ratchet broken:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nOK: all tracked subsystems at or above their ratchet floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
