#!/usr/bin/env python3
"""Perf-smoke regression gate for the hot-path benchmarks.

Compares fresh google-benchmark JSON output (bench_allocator,
bench_coordinator_scale, bench_simloop, bench_parallel_alloc,
bench_route_class, bench_churn) against the
checked-in baselines in BENCH_hotpath.json and fails if any benchmark
regressed by more than the tolerance. Run from CI after the perf-smoke leg;
deliberately NOT a ctest -- it needs the baseline file and a calibrated
machine-speed correction, both of which live outside the test binaries.

CI machines are not the machine the baseline was recorded on, so raw
nanosecond comparisons are meaningless there. Instead the check is
*relative*: every fresh run is first normalized by the median
fresh/baseline ratio across all benchmarks (the machine-speed calibration
factor), and only benchmarks whose normalized ratio still exceeds
1 + tolerance are flagged. A uniform slowdown (slower CI box) cancels out;
a *skewed* slowdown -- e.g. an observability branch creeping into one hot
loop while the others stay put -- does not. Use --no-normalize for
same-machine comparisons against the recorded absolute numbers.

Thread-scaling family (throughput_vs_threads, EXPERIMENTS.md EXT-P):
benchmarks whose name carries a "threads:" argument scale with the machine
*shape*, not just its speed -- an 8-thread fill on a 2-core box is a
different experiment from the same fill on a 32-core box, and a uniform
calibration factor cannot correct for that. Two rules therefore apply:

  1. thread-family benchmarks never contribute to the machine-speed
     calibration median (their ratios would skew it on differently-shaped
     hosts), and
  2. they are gated only when the fresh run's echelon_hardware_concurrency
     context matches the baseline run's; on a shape mismatch they are
     reported but skipped, with a note.

A baseline run may additionally carry a "single_core_host" context marker
(stamped when the recording machine had 1 CPU): thread-scaling numbers from
such a run are degenerate -- every width timeshares one core -- so its
thread-family benchmarks are always reported as SKIPPED, even against a
fresh 1-CPU run.

Route-structure family (bench_route_class, EXPERIMENTS.md EXT-Q):
benchmarks whose name carries a "routes:" argument sweep the route-sharing
*structure* of the flow population. Like the thread family they are
excluded from the machine-speed calibration median (the class-vs-per-flow
ratios span nearly two orders of magnitude and would swamp it); unlike the
thread family they do not depend on machine shape and are gated normally.

Control-churn family (bench_churn, EXPERIMENTS.md EXT-R): benchmarks whose
name carries a "churn:" argument sweep the dirty fraction of the scheduler
population across the incremental-vs-full SchedMode split. The
incremental-vs-full ratios legitimately span integer factors and shift
whenever the incremental tiers improve, so -- exactly like the route
family -- they are excluded from the machine-speed calibration median but
gated normally.

Online-service family (bench_service, EXPERIMENTS.md EXT-S): benchmarks
whose name carries a "svc:" argument run the streaming service loop end to
end (admission + incremental launch + control ticks) or its snapshot
save/restore paths. Their cost tracks the service-mode control-plane
tiers, not raw machine speed, so they follow the route/churn rule:
calibration-excluded, gated normally.

Telemetry family (bench_telemetry, EXPERIMENTS.md EXT-T): benchmarks whose
name carries a "tel:" argument exercise the service-plane telemetry path
(DESIGN.md §15) -- flush rendering, flight-recorder appends, and the
telemetry-on/off service-loop pair. Calibration-excluded, gated normally,
plus one extra *same-run* gate: any fresh benchmark exporting a
"telemetry_overhead_ratio" counter (BM_TelemetryOverheadPair interleaves a
telemetry-off and a telemetry-on drain of the same job stream inside each
iteration, so machine drift cancels) must stay within
--overhead-tolerance (default 2%). The ratio is measured on one machine
inside one process, so no baseline or calibration is involved -- this is
the "telemetry costs <= 2 percent" acceptance gate.

Usage:
  bench_allocator         --benchmark_out=alloc.json --benchmark_out_format=json
  bench_coordinator_scale --benchmark_out=coord.json --benchmark_out_format=json
  bench_simloop           --benchmark_out=simloop.json --benchmark_out_format=json
  bench_parallel_alloc    --benchmark_out=par.json --benchmark_out_format=json
  bench_churn             --benchmark_out=churn.json --benchmark_out_format=json
  tools/check_bench_regression.py --baseline BENCH_hotpath.json \
      --tolerance 2.0 alloc.json coord.json simloop.json par.json churn.json

Exit status: 0 = all within tolerance, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import statistics
import sys

# Benchmark names carrying this argument tag belong to the thread-scaling
# family (see module docstring).
THREAD_FAMILY_TAG = "threads:"

# Benchmark names carrying this argument tag belong to the route-structure
# family: calibration-excluded but gated normally (see module docstring).
ROUTE_FAMILY_TAG = "routes:"

# Benchmark names carrying this argument tag belong to the control-churn
# family: calibration-excluded but gated normally (see module docstring).
CHURN_FAMILY_TAG = "churn:"

# Benchmark names carrying this argument tag belong to the online-service
# family: calibration-excluded but gated normally (see module docstring).
SERVICE_FAMILY_TAG = "svc:"

# Benchmark names carrying this argument tag belong to the telemetry
# family: calibration-excluded, gated normally. Benchmarks exporting this
# counter are additionally subject to the same-run telemetry-on/off
# overhead gate (see module docstring).
TEL_FAMILY_TAG = "tel:"
TEL_OVERHEAD_COUNTER = "telemetry_overhead_ratio"

# Baseline-run context marker: the recording host had a single CPU, so its
# thread-scaling numbers are degenerate and never gated.
SINGLE_CORE_MARKER = "single_core_host"


def is_thread_family(name):
    return THREAD_FAMILY_TAG in name


def is_route_family(name):
    return ROUTE_FAMILY_TAG in name


def is_churn_family(name):
    return CHURN_FAMILY_TAG in name


def is_service_family(name):
    return SERVICE_FAMILY_TAG in name


def is_tel_family(name):
    return TEL_FAMILY_TAG in name


def check_telemetry_overhead(overhead_ratios, tolerance_pct):
    """Same-run telemetry-on/off ratios exceeding the overhead tolerance.

    `overhead_ratios` maps benchmark name -> list of exported
    telemetry_overhead_ratio counters, one per repetition (on/off
    wall-clock, interleaved inside one process). The gate applies to the
    per-name median so --benchmark_repetitions runs are robust to a single
    noisy repetition. Returns a list of (name, median ratio) failures; runs
    without the counter degrade to no-op rather than error.
    """
    limit = 1.0 + tolerance_pct / 100.0
    failures = []
    for name, ratios in sorted(overhead_ratios.items()):
        ratio = statistics.median(ratios)
        status = "ok"
        if ratio > limit:
            status = f"OVER BUDGET {100.0 * (ratio - 1.0):+.2f}%"
            failures.append((name, ratio))
        print(f"  telemetry overhead {name:<40} on/off x{ratio:.4f} "
              f"(median of {len(ratios)})  {status}")
    return failures


def load_baseline(path):
    """(name -> baseline real_time ns, name -> run hardware concurrency,
    set of names recorded on a single_core_host-marked run) from
    BENCH_hotpath.json's runs blob."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    hw = {}
    single_core = set()
    for run in doc.get("runs", {}).values():
        context = run.get("context", {})
        run_hw = context.get("echelon_hardware_concurrency")
        run_single_core = str(context.get(SINGLE_CORE_MARKER, "")) == "true"
        for b in run.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue
            times[b["name"]] = float(b["real_time"])
            if run_hw is not None:
                hw[b["name"]] = str(run_hw)
            if run_single_core:
                single_core.add(b["name"])
    if not times:
        raise ValueError(f"{path}: no benchmark baselines found under 'runs'")
    return times, hw, single_core


def load_fresh(paths, require_metrics_context):
    """(name -> fresh real_time ns, name -> run hardware concurrency,
    name -> per-repetition telemetry_overhead_ratio counters) across all
    given benchmark JSON files."""
    times = {}
    hw = {}
    overhead = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        context = doc.get("context", {})
        if require_metrics_context and "echelon_metrics" not in context:
            raise ValueError(
                f"{path}: context is missing the echelon_metrics snapshot "
                "(bench_util.hpp should attach it)"
            )
        run_hw = context.get("echelon_hardware_concurrency")
        for b in doc.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue
            times[b["name"]] = float(b["real_time"])
            if run_hw is not None:
                hw[b["name"]] = str(run_hw)
            if TEL_OVERHEAD_COUNTER in b:
                overhead.setdefault(b["name"], []).append(
                    float(b[TEL_OVERHEAD_COUNTER]))
    return times, hw, overhead


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", nargs="+", help="google-benchmark JSON outputs")
    ap.add_argument("--baseline", default="BENCH_hotpath.json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="max allowed regression in percent after calibration (default 2)",
    )
    ap.add_argument(
        "--no-normalize",
        action="store_true",
        help="compare raw times (same machine as the baseline recording)",
    )
    ap.add_argument(
        "--require-metrics-context",
        action="store_true",
        help="fail if a fresh run lacks the echelon_metrics context blob",
    )
    ap.add_argument(
        "--overhead-tolerance",
        type=float,
        default=2.0,
        help="max telemetry-on vs telemetry-off overhead in percent, gated "
        "within the fresh run on same-run tel:1/tel:0 pairs (default 2)",
    )
    args = ap.parse_args()

    try:
        baseline, baseline_hw, baseline_single_core = load_baseline(
            args.baseline)
        fresh, fresh_hw, fresh_overhead = load_fresh(
            args.fresh, args.require_metrics_context)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    common = sorted(set(baseline) & set(fresh))
    if not common:
        print("error: no benchmark names in common with the baseline",
              file=sys.stderr)
        return 2

    ratios = {name: fresh[name] / baseline[name] for name in common}
    # Machine-speed calibration from the shape- and structure-insensitive
    # benchmarks only (falling back to everything if nothing else ran).
    calib_pool = [r for n, r in ratios.items()
                  if not is_thread_family(n) and not is_route_family(n)
                  and not is_churn_family(n) and not is_service_family(n)
                  and not is_tel_family(n)]
    if not calib_pool:
        calib_pool = list(ratios.values())
    calibration = 1.0 if args.no_normalize else statistics.median(calib_pool)
    limit = 1.0 + args.tolerance / 100.0

    print(f"baseline: {args.baseline} ({len(common)} comparable benchmarks)")
    calib_kind = ("raw" if args.no_normalize
                  else "median fresh/baseline, thread/route/churn/service/"
                  "telemetry families excluded")
    print(f"machine-speed calibration: x{calibration:.3f} ({calib_kind})")
    failures = []
    shape_skipped = []
    for name in common:
        norm = ratios[name] / calibration
        if is_thread_family(name) and name in baseline_single_core:
            shape_skipped.append(name)
            print(f"  {name:<40} base {baseline[name]:>12.0f} ns  "
                  f"fresh {fresh[name]:>12.0f} ns  norm x{norm:.3f}  "
                  f"SKIPPED (baseline recorded on a single_core_host)")
            continue
        if is_thread_family(name) and baseline_hw.get(name) != fresh_hw.get(
            name
        ):
            shape_skipped.append(name)
            print(f"  {name:<40} base {baseline[name]:>12.0f} ns  "
                  f"fresh {fresh[name]:>12.0f} ns  norm x{norm:.3f}  "
                  f"SKIPPED (hw {baseline_hw.get(name)} -> "
                  f"{fresh_hw.get(name)})")
            continue
        status = "ok"
        if norm > limit:
            status = f"REGRESSED {100.0 * (norm - 1.0):+.2f}%"
            failures.append(name)
        print(f"  {name:<40} base {baseline[name]:>12.0f} ns  "
              f"fresh {fresh[name]:>12.0f} ns  norm x{norm:.3f}  {status}")

    overhead_failures = check_telemetry_overhead(
        fresh_overhead, args.overhead_tolerance)

    missing = sorted(set(baseline) - set(fresh))
    if missing:
        print(f"note: {len(missing)} baseline benchmarks not in this run "
              f"(e.g. {missing[0]})")
    if shape_skipped:
        print(f"note: {len(shape_skipped)} thread-scaling benchmark(s) "
              "skipped: single-core baseline recording or machine shape "
              "differs from the baseline's")

    if overhead_failures:
        print(f"\nFAIL: {len(overhead_failures)} telemetry pair(s) over the "
              f"{args.overhead_tolerance}% on/off overhead budget:",
              file=sys.stderr)
        for name, ratio in overhead_failures:
            print(f"  {name}: x{ratio:.4f}", file=sys.stderr)
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.tolerance}% with observability disabled:",
              file=sys.stderr)
        for name in failures:
            print(f"  {name}", file=sys.stderr)
    if failures or overhead_failures:
        return 1
    print(f"\nOK: no benchmark regressed more than {args.tolerance}% and "
          "every telemetry pair stayed within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
