#!/usr/bin/env python3
"""Perf-smoke regression gate for the hot-path benchmarks.

Compares fresh google-benchmark JSON output (bench_allocator,
bench_coordinator_scale, bench_simloop) against the checked-in baselines in
BENCH_hotpath.json and fails if any benchmark regressed by more than the
tolerance. Run from CI after the perf-smoke leg; deliberately NOT a ctest --
it needs the baseline file and a calibrated machine-speed correction, both
of which live outside the test binaries.

CI machines are not the machine the baseline was recorded on, so raw
nanosecond comparisons are meaningless there. Instead the check is
*relative*: every fresh run is first normalized by the median
fresh/baseline ratio across all benchmarks (the machine-speed calibration
factor), and only benchmarks whose normalized ratio still exceeds
1 + tolerance are flagged. A uniform slowdown (slower CI box) cancels out;
a *skewed* slowdown -- e.g. an observability branch creeping into one hot
loop while the others stay put -- does not. Use --no-normalize for
same-machine comparisons against the recorded absolute numbers.

Usage:
  bench_allocator         --benchmark_out=alloc.json --benchmark_out_format=json
  bench_coordinator_scale --benchmark_out=coord.json --benchmark_out_format=json
  bench_simloop           --benchmark_out=simloop.json --benchmark_out_format=json
  tools/check_bench_regression.py --baseline BENCH_hotpath.json \
      --tolerance 2.0 alloc.json coord.json simloop.json

Exit status: 0 = all within tolerance, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import statistics
import sys


def load_baseline(path):
    """name -> baseline real_time ns, from BENCH_hotpath.json's runs blob."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for run in doc.get("runs", {}).values():
        for b in run.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue
            times[b["name"]] = float(b["real_time"])
    if not times:
        raise ValueError(f"{path}: no benchmark baselines found under 'runs'")
    return times


def load_fresh(paths, require_metrics_context):
    """name -> fresh real_time ns across all given benchmark JSON files."""
    times = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if require_metrics_context and "echelon_metrics" not in doc.get(
            "context", {}
        ):
            raise ValueError(
                f"{path}: context is missing the echelon_metrics snapshot "
                "(bench_util.hpp should attach it)"
            )
        for b in doc.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue
            times[b["name"]] = float(b["real_time"])
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", nargs="+", help="google-benchmark JSON outputs")
    ap.add_argument("--baseline", default="BENCH_hotpath.json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="max allowed regression in percent after calibration (default 2)",
    )
    ap.add_argument(
        "--no-normalize",
        action="store_true",
        help="compare raw times (same machine as the baseline recording)",
    )
    ap.add_argument(
        "--require-metrics-context",
        action="store_true",
        help="fail if a fresh run lacks the echelon_metrics context blob",
    )
    args = ap.parse_args()

    try:
        baseline = load_baseline(args.baseline)
        fresh = load_fresh(args.fresh, args.require_metrics_context)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    common = sorted(set(baseline) & set(fresh))
    if not common:
        print("error: no benchmark names in common with the baseline",
              file=sys.stderr)
        return 2

    ratios = {name: fresh[name] / baseline[name] for name in common}
    calibration = 1.0 if args.no_normalize else statistics.median(
        ratios.values()
    )
    limit = 1.0 + args.tolerance / 100.0

    print(f"baseline: {args.baseline} ({len(common)} comparable benchmarks)")
    print(f"machine-speed calibration: x{calibration:.3f} "
          f"({'raw' if args.no_normalize else 'median fresh/baseline'})")
    failures = []
    for name in common:
        norm = ratios[name] / calibration
        status = "ok"
        if norm > limit:
            status = f"REGRESSED {100.0 * (norm - 1.0):+.2f}%"
            failures.append(name)
        print(f"  {name:<40} base {baseline[name]:>12.0f} ns  "
              f"fresh {fresh[name]:>12.0f} ns  norm x{norm:.3f}  {status}")

    missing = sorted(set(baseline) - set(fresh))
    if missing:
        print(f"note: {len(missing)} baseline benchmarks not in this run "
              f"(e.g. {missing[0]})")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.tolerance}% with observability disabled:",
              file=sys.stderr)
        for name in failures:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.tolerance}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
