#!/usr/bin/env python3
"""Perf-smoke regression gate for the hot-path benchmarks.

Compares fresh google-benchmark JSON output (bench_allocator,
bench_coordinator_scale, bench_simloop, bench_parallel_alloc) against the
checked-in baselines in BENCH_hotpath.json and fails if any benchmark
regressed by more than the tolerance. Run from CI after the perf-smoke leg;
deliberately NOT a ctest -- it needs the baseline file and a calibrated
machine-speed correction, both of which live outside the test binaries.

CI machines are not the machine the baseline was recorded on, so raw
nanosecond comparisons are meaningless there. Instead the check is
*relative*: every fresh run is first normalized by the median
fresh/baseline ratio across all benchmarks (the machine-speed calibration
factor), and only benchmarks whose normalized ratio still exceeds
1 + tolerance are flagged. A uniform slowdown (slower CI box) cancels out;
a *skewed* slowdown -- e.g. an observability branch creeping into one hot
loop while the others stay put -- does not. Use --no-normalize for
same-machine comparisons against the recorded absolute numbers.

Thread-scaling family (throughput_vs_threads, EXPERIMENTS.md EXT-P):
benchmarks whose name carries a "threads:" argument scale with the machine
*shape*, not just its speed -- an 8-thread fill on a 2-core box is a
different experiment from the same fill on a 32-core box, and a uniform
calibration factor cannot correct for that. Two rules therefore apply:

  1. thread-family benchmarks never contribute to the machine-speed
     calibration median (their ratios would skew it on differently-shaped
     hosts), and
  2. they are gated only when the fresh run's echelon_hardware_concurrency
     context matches the baseline run's; on a shape mismatch they are
     reported but skipped, with a note.

Usage:
  bench_allocator         --benchmark_out=alloc.json --benchmark_out_format=json
  bench_coordinator_scale --benchmark_out=coord.json --benchmark_out_format=json
  bench_simloop           --benchmark_out=simloop.json --benchmark_out_format=json
  bench_parallel_alloc    --benchmark_out=par.json --benchmark_out_format=json
  tools/check_bench_regression.py --baseline BENCH_hotpath.json \
      --tolerance 2.0 alloc.json coord.json simloop.json par.json

Exit status: 0 = all within tolerance, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import statistics
import sys

# Benchmark names carrying this argument tag belong to the thread-scaling
# family (see module docstring).
THREAD_FAMILY_TAG = "threads:"


def is_thread_family(name):
    return THREAD_FAMILY_TAG in name


def load_baseline(path):
    """(name -> baseline real_time ns, name -> run hardware concurrency)
    from BENCH_hotpath.json's runs blob."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    hw = {}
    for run in doc.get("runs", {}).values():
        run_hw = run.get("context", {}).get("echelon_hardware_concurrency")
        for b in run.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue
            times[b["name"]] = float(b["real_time"])
            if run_hw is not None:
                hw[b["name"]] = str(run_hw)
    if not times:
        raise ValueError(f"{path}: no benchmark baselines found under 'runs'")
    return times, hw


def load_fresh(paths, require_metrics_context):
    """(name -> fresh real_time ns, name -> run hardware concurrency)
    across all given benchmark JSON files."""
    times = {}
    hw = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        context = doc.get("context", {})
        if require_metrics_context and "echelon_metrics" not in context:
            raise ValueError(
                f"{path}: context is missing the echelon_metrics snapshot "
                "(bench_util.hpp should attach it)"
            )
        run_hw = context.get("echelon_hardware_concurrency")
        for b in doc.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue
            times[b["name"]] = float(b["real_time"])
            if run_hw is not None:
                hw[b["name"]] = str(run_hw)
    return times, hw


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", nargs="+", help="google-benchmark JSON outputs")
    ap.add_argument("--baseline", default="BENCH_hotpath.json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="max allowed regression in percent after calibration (default 2)",
    )
    ap.add_argument(
        "--no-normalize",
        action="store_true",
        help="compare raw times (same machine as the baseline recording)",
    )
    ap.add_argument(
        "--require-metrics-context",
        action="store_true",
        help="fail if a fresh run lacks the echelon_metrics context blob",
    )
    args = ap.parse_args()

    try:
        baseline, baseline_hw = load_baseline(args.baseline)
        fresh, fresh_hw = load_fresh(args.fresh, args.require_metrics_context)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    common = sorted(set(baseline) & set(fresh))
    if not common:
        print("error: no benchmark names in common with the baseline",
              file=sys.stderr)
        return 2

    ratios = {name: fresh[name] / baseline[name] for name in common}
    # Machine-speed calibration from the shape-insensitive benchmarks only
    # (falling back to everything if the run is thread-family-only).
    calib_pool = [r for n, r in ratios.items() if not is_thread_family(n)]
    if not calib_pool:
        calib_pool = list(ratios.values())
    calibration = 1.0 if args.no_normalize else statistics.median(calib_pool)
    limit = 1.0 + args.tolerance / 100.0

    print(f"baseline: {args.baseline} ({len(common)} comparable benchmarks)")
    calib_kind = ("raw" if args.no_normalize
                  else "median fresh/baseline, thread-family excluded")
    print(f"machine-speed calibration: x{calibration:.3f} ({calib_kind})")
    failures = []
    shape_skipped = []
    for name in common:
        norm = ratios[name] / calibration
        if is_thread_family(name) and baseline_hw.get(name) != fresh_hw.get(
            name
        ):
            shape_skipped.append(name)
            print(f"  {name:<40} base {baseline[name]:>12.0f} ns  "
                  f"fresh {fresh[name]:>12.0f} ns  norm x{norm:.3f}  "
                  f"SKIPPED (hw {baseline_hw.get(name)} -> "
                  f"{fresh_hw.get(name)})")
            continue
        status = "ok"
        if norm > limit:
            status = f"REGRESSED {100.0 * (norm - 1.0):+.2f}%"
            failures.append(name)
        print(f"  {name:<40} base {baseline[name]:>12.0f} ns  "
              f"fresh {fresh[name]:>12.0f} ns  norm x{norm:.3f}  {status}")

    missing = sorted(set(baseline) - set(fresh))
    if missing:
        print(f"note: {len(missing)} baseline benchmarks not in this run "
              f"(e.g. {missing[0]})")
    if shape_skipped:
        print(f"note: {len(shape_skipped)} thread-scaling benchmark(s) "
              "skipped: machine shape differs from the baseline recording")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.tolerance}% with observability disabled:",
              file=sys.stderr)
        for name in failures:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.tolerance}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
