#!/usr/bin/env python3
"""Structural validator for the Prometheus text exposition the service loop
writes (obs::to_prom_text via --prom-out; DESIGN.md §15).

Checks, per file:

  1. Text-format shape: every non-comment line is `name[{labels}] value`
     with a metric name matching the Prometheus grammar and a value that
     parses as a float (inf/NaN never appear -- the emitter uses %.17g over
     finite doubles).
  2. TYPE discipline: every family carries exactly one `# TYPE family
     {counter|gauge|histogram}` line, emitted before the family's first
     sample; counter families end in `_total`; no family is declared twice.
  3. Histogram completeness: each histogram emits cumulative `_bucket`
     lines with monotonically non-decreasing counts, a terminal
     `le="+Inf"` bucket, and `_sum`/`_count` lines where `_count` equals
     the +Inf bucket.
  4. Ordering stability: family blocks appear in sorted order and label
     lines within a family are sorted, so two expositions of the same
     registry are byte-identical -- CI runs the serve leg twice and also
     diffs the files, but the sortedness check catches nondeterminism even
     in a single artifact.

Usage:
  python3 tools/check_prom_expose.py prom.txt [prom2.txt ...]

Exit status: 0 = every file well-formed, 1 = a check failed, 2 = usage/IO
error. An empty file is valid (an empty registry renders to "").
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$"
)
TYPE_RE = re.compile(
    r"^# TYPE (?P<family>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<kind>counter|gauge|histogram)$"
)


def base_family(name):
    """Metric name -> its TYPE-declared family (histogram series collapse)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_file(path):
    """Returns a list of error strings for one exposition file."""
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return [f"{path}: {e}"]

    types = {}          # family -> kind
    family_order = []   # TYPE declaration order
    samples = {}        # family -> [(name, labels, float value)]
    current = None

    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"{path}:{lineno}"
        if not line:
            errors.append(f"{where}: blank line inside exposition")
            continue
        m = TYPE_RE.match(line)
        if m:
            family = m.group("family")
            if family in types:
                errors.append(f"{where}: duplicate TYPE for '{family}'")
            types[family] = m.group("kind")
            family_order.append(family)
            current = family
            continue
        if line.startswith("#"):
            errors.append(f"{where}: unexpected comment line {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"{where}: unparseable sample line {line!r}")
            continue
        name = m.group("name")
        family = base_family(name)
        if family not in types:
            errors.append(f"{where}: sample '{name}' before its TYPE line")
            continue
        if family != current:
            errors.append(
                f"{where}: sample '{name}' outside its family block "
                f"(current family is '{current}')"
            )
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"{where}: bad value {m.group('value')!r}")
            continue
        if value != value or value in (float("inf"), float("-inf")):
            errors.append(f"{where}: non-finite value {m.group('value')!r}")
        kind = types[family]
        if kind == "histogram" and name == family:
            errors.append(
                f"{where}: bare histogram sample '{name}' (expected "
                "_bucket/_sum/_count)"
            )
        if kind != "histogram" and name != family:
            errors.append(
                f"{where}: histogram-style sample '{name}' under "
                f"{kind} family '{family}'"
            )
        samples.setdefault(family, []).append(
            (name, m.group("labels") or "", value)
        )

    for family, kind in types.items():
        if kind == "counter" and not family.endswith("_total"):
            errors.append(f"{path}: counter family '{family}' "
                          "missing the _total suffix")
        rows = samples.get(family, [])
        if not rows:
            errors.append(f"{path}: TYPE '{family}' declared "
                          "but no samples follow")
            continue
        if kind == "histogram":
            errors.extend(check_histogram(path, family, rows))
        else:
            label_rows = [labels for name, labels, _ in rows]
            if label_rows != sorted(label_rows):
                errors.append(f"{path}: family '{family}' label rows not "
                              "sorted (unstable ordering)")

    if family_order != sorted(family_order):
        errors.append(f"{path}: family blocks not in sorted order "
                      "(unstable ordering)")
    return errors


def check_histogram(path, family, rows):
    errors = []
    buckets = []
    sum_seen = count_value = None
    for name, labels, value in rows:
        if name == family + "_bucket":
            m = re.match(r'^le="([^"]*)"$', labels)
            if m is None:
                errors.append(f"{path}: histogram '{family}' bucket with "
                              f"bad labels {labels!r}")
                continue
            buckets.append((m.group(1), value))
        elif name == family + "_sum":
            sum_seen = value
        elif name == family + "_count":
            count_value = value
    if not buckets or buckets[-1][0] != "+Inf":
        errors.append(f"{path}: histogram '{family}' missing terminal "
                      '+Inf bucket')
        return errors
    counts = [v for _, v in buckets]
    if any(b > a for b, a in zip(counts, counts[1:])):
        errors.append(f"{path}: histogram '{family}' cumulative bucket "
                      "counts decrease")
    bounds = []
    for le, _ in buckets[:-1]:
        try:
            bounds.append(float(le))
        except ValueError:
            errors.append(f"{path}: histogram '{family}' non-numeric "
                          f"bound le={le!r}")
            return errors
    if bounds != sorted(bounds):
        errors.append(f"{path}: histogram '{family}' bucket bounds not "
                      "ascending")
    if sum_seen is None or count_value is None:
        errors.append(f"{path}: histogram '{family}' missing _sum or "
                      "_count")
    elif count_value != counts[-1]:
        errors.append(f"{path}: histogram '{family}' _count "
                      f"{count_value} != +Inf bucket {counts[-1]}")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            for e in errors:
                print(f"error: {e}", file=sys.stderr)
        else:
            print(f"ok: {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
