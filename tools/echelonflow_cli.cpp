// echelonflow_cli -- command-line driver for the EchelonFlow simulator.
//
// Subcommands:
//   fig2                         reproduce the paper's motivating example
//   single  [options]            one training job on a dedicated fabric
//   cluster [options]            a multi-job Poisson trace on a shared fabric
//   serve   [options]            online service mode: streaming arrivals,
//                                admission control, snapshot/restore
//                                (DESIGN.md §13)
//
// `single` options:
//   --paradigm dp|ps|pp|tp|fsdp|ep     (default pp)
//   --scheduler fair|srpt|aalo|sincronia|coflow|echelonflow  (default echelonflow)
//   --ranks N          (default 4)      --iterations N   (default 3)
//   --gbps G           (default 25)     --microbatches N (default 6)
//   --layers N         (default 8)      --hidden N       (default 2048)
//   --jitter X         (default 0)      --timeline       (render Gantt)
//   --sched-mode full|incremental      (default incremental; DESIGN.md §12:
//                       incremental = dirty-job-scoped control passes, full =
//                       reference recompute-everything mode. Bit-identical.)
//
// `cluster` options:
//   --jobs N (default 12)  --hosts N (default 16)  --seed S (default 42)
//   --gbps G (default 25)  --iterations N (default 2)
//   --scheduler <name>|all (default all)  --csv PATH (write results CSV)
//     names: fair|srpt|coflow|sincronia|echelonflow|all
//   --sched-mode full|incremental (default incremental; same as `single`)
//   --churn-seed S (default 0 = off): seeded external weight churn through
//     the Flow notification setters, one active flow per simulated
//     millisecond -- exercises the control_dirty -> job-mark path
//     (EXPERIMENTS.md EXT-R). Deterministic and SchedMode-independent.
//   --threads N (default 0 = one per hardware thread; 1 = serial)
//     scheduler comparisons run through cluster::run_sweep; output is
//     identical for any thread count.
//   --intra-threads N (default 1 = serial; 0 = all shared-pool workers)
//     intra-run data parallelism inside each experiment (per-component
//     water-fill, flow stamping, heap prep; DESIGN.md §10). Also
//     bit-identical at any setting, and safe to combine with --threads:
//     nested dispatches run inline-serially on the shared pool.
//   --fault-plan PATH   replay a scripted fault plan (src/faultsim format;
//                       see DESIGN.md §8) against every scheduler
//   --chaos N           generate N link faults + N brownouts + N stragglers
//                       from a seeded profile instead of a plan file
//   --chaos-seed S (default 1)  --chaos-horizon T seconds (default 2)
//     fault columns (reroutes/parks/abandoned/downtime) are reported and
//     written to the CSV whenever fault injection is active.
//
// `serve` options (DESIGN.md §13):
//   --scheduler fair|srpt|coflow|sincronia|echelonflow|coordinator
//                       (default echelonflow)
//   --fabric bigswitch|leafspine (default bigswitch)
//   --hosts N (default 16)  --gbps G (default 25)  --oversub X (default 2)
//   --arrivals PATH     replay a written arrival-trace file instead of the
//                       seeded Poisson source
//   --jobs N (default 12)  --rate R jobs/s (default 2)  --seed S (default 42)
//   --iterations N (default 2)  --burst-every N (default 0 = off; every Nth
//                       job arrives at the same instant as its predecessor)
//   --arrivals-out PATH capture the Poisson stream to a replayable trace file
//   --admission accept-all|queue-with-cap|tardiness-aware (default accept-all)
//   --max-running N (default 0 = unlimited)  --queue-cap N (default 16)
//   --tardiness-limit X seconds (default 1; tardiness-aware load shedding)
//   --control-period T seconds (default 0.01) forced control-pass interval
//   --sched-mode full|incremental  --threads N   (same as `cluster`)
//   --chaos N --chaos-seed S --chaos-horizon T   seeded link faults +
//                       brownouts (stragglers stay 0: service workers are
//                       created at launch time, after the plan is armed)
//   --snapshot-out PATH write a versioned binary snapshot (at exit, and
//                       periodically with --snapshot-every)
//   --snapshot-every N  rewrite --snapshot-out every N service steps
//   --snapshot-in PATH  restore a snapshot and continue it to completion
//                       (scheduler/admission/arrival flags come from the
//                       snapshot; only observability flags apply)
//
// `serve` telemetry options (DESIGN.md §15; deterministic in sim time, and
// results are bit-identical with all of these on or off):
//   --prom-out PATH     Prometheus text exposition, rewritten atomically at
//                       every flush boundary (tmp file + rename)
//   --prom-rotate N     keep N rotated copies (PATH.1 .. PATH.N)
//   --metrics-every T   flush period in *simulated* seconds (default 0 = off;
//                       defaults to 0.1 when --prom-out/--trace-chunk-out is
//                       given without it)
//   --slo SPEC          SLO objectives, e.g. "jct<=2.0@0.1,tardiness<=1@0.05"
//                       (kind<=threshold@error_budget, kinds jct|queue_wait|
//                       tardiness); publishes service.slo.* burn-rate gauges
//                       and latches per-job deadline-at-risk flags
//   --slo-window T      rolling SLO window in simulated seconds (default 10)
//   --flightrec N       keep a flight recorder ring of the last N service
//                       events (admit/launch/complete/fault/flush/...)
//   --flightrec-out PATH dump the ring on error and at exit (ECHFLIGHT text,
//                       round-trips through obs::parse_flight_dump)
//   --series-budget N   cap every time series at N points (decimation by
//                       stride doubling; oldest points thin out first)
//   --trace-chunk-out PATH  stream trace events as incremental ECHCHUNK
//                       chunks flushed at every telemetry boundary; memory
//                       stays O(chunk), and obs::merge_trace_chunks rebuilds
//                       a byte-identical Perfetto trace from the file
//   --profile           self-profile control-plane phases (wall-clock; kept
//                       out of the deterministic registries, exported as a
//                       "service control" Perfetto process with --trace-out)
//
// observability options (both `single` and `cluster`, DESIGN.md §9):
//   --trace-out PATH    write a Perfetto/Chrome trace_event JSON trace
//                       (open in https://ui.perfetto.dev). `cluster` writes
//                       one file per scheduler: PATH gains a .<scheduler>
//                       tag before its extension when the sweep has more
//                       than one point.
//   --trace-detail off|coarse|flow   how much the emitters record
//                       (default: flow when --trace-out is given, else off).
//                       coarse = control-plane + fault events only.
//   --metrics-out PATH  write the metrics-registry snapshot as CSV
//                       (merged across sweep points for `cluster`) and
//                       print a summary table to stdout.
//     Observability is read-only: results are byte-identical with these
//     flags on or off (tests/test_obs.cpp pins this).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "cluster/sweep.hpp"
#include "faultsim/fault_plan.hpp"
#include "cluster/trace.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "echelon/aalo.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/sincronia.hpp"
#include "echelon/srpt.hpp"
#include "netsim/timeline.hpp"
#include "obs/export.hpp"
#include "obs/expose.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "service/arrivals.hpp"
#include "service/service.hpp"
#include "service/slo.hpp"
#include "service/snapshot.hpp"
#include "topology/builders.hpp"
#include "workload/dp.hpp"
#include "workload/ep.hpp"
#include "workload/fsdp.hpp"
#include "workload/pp.hpp"
#include "workload/tp.hpp"

namespace {

using namespace echelon;

struct Args {
  std::map<std::string, std::string> kv;
  bool flag_timeline = false;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const {
    const auto it = kv.find(key);
    return it != kv.end() ? it->second : def;
  }
  [[nodiscard]] int geti(const std::string& key, int def) const {
    const auto it = kv.find(key);
    return it != kv.end() ? std::atoi(it->second.c_str()) : def;
  }
  [[nodiscard]] double getd(const std::string& key, double def) const {
    const auto it = kv.find(key);
    return it != kv.end() ? std::atof(it->second.c_str()) : def;
  }
};

Args parse(int argc, char** argv, int from) {
  Args a;
  for (int i = from; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (key == "timeline") {
      a.flag_timeline = true;
    } else if (key == "profile") {
      a.kv["profile"] = "1";
    } else if (i + 1 < argc) {
      a.kv[key] = argv[++i];
    }
  }
  return a;
}

// Observability flags shared by `single` and `cluster`. --trace-detail
// defaults to `flow` whenever a trace output was requested, so
// `--trace-out t.json` alone produces a useful trace.
struct ObsArgs {
  std::string trace_out;
  std::string metrics_out;
  obs::TraceDetail detail = obs::TraceDetail::kOff;

  [[nodiscard]] bool tracing() const noexcept {
    return detail != obs::TraceDetail::kOff;
  }
  [[nodiscard]] bool metrics() const noexcept { return !metrics_out.empty(); }
};

[[nodiscard]] bool parse_obs(const Args& args, ObsArgs* out) {
  out->trace_out = args.get("trace-out", "");
  out->metrics_out = args.get("metrics-out", "");
  const std::string detail =
      args.get("trace-detail", out->trace_out.empty() ? "off" : "flow");
  if (!obs::trace_detail_from_string(detail, &out->detail)) {
    std::cerr << "unknown --trace-detail '" << detail
              << "' (expected off|coarse|flow)\n";
    return false;
  }
  return true;
}

// --sched-mode (DESIGN.md §12): both values produce bit-identical results;
// `full` is the reference mode the churn-equivalence suite compares against.
[[nodiscard]] bool parse_sched_mode(const Args& args, netsim::SchedMode* out) {
  const std::string mode = args.get("sched-mode", "incremental");
  if (mode == "incremental") {
    *out = netsim::SchedMode::kIncremental;
  } else if (mode == "full") {
    *out = netsim::SchedMode::kFullRecompute;
  } else {
    std::cerr << "unknown --sched-mode '" << mode
              << "' (expected full|incremental)\n";
    return false;
  }
  return true;
}

// "sweep.json" + "srpt" -> "sweep.srpt.json"; extensionless paths get the
// tag appended. Used by `cluster` to write one trace per sweep point.
[[nodiscard]] std::string tag_path(const std::string& path,
                                   const std::string& tag) {
  const std::size_t dot = path.find_last_of('.');
  const std::size_t slash = path.find_last_of('/');
  if (dot == std::string::npos || dot == 0 ||
      (slash != std::string::npos && dot < slash)) {
    return path + "." + tag;
  }
  return path.substr(0, dot) + "." + tag + path.substr(dot);
}

// Writes one Perfetto trace file and reports what landed in it.
[[nodiscard]] bool export_trace(const std::string& path,
                                const obs::TraceRecorder& recorder,
                                const obs::MetricsSnapshot* metrics,
                                const obs::PerfettoOptions& options) {
  if (!obs::write_perfetto_trace_file(path, recorder, metrics, options)) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << " (" << recorder.size() << " events";
  if (recorder.dropped() > 0) {
    std::cout << ", " << recorder.dropped() << " dropped";
  }
  std::cout << ")\n";
  return true;
}

std::unique_ptr<netsim::NetworkScheduler> make_scheduler(
    const std::string& name, const ef::Registry* reg) {
  if (name == "fair") return nullptr;
  if (name == "srpt") return std::make_unique<ef::SrptScheduler>();
  if (name == "aalo") return std::make_unique<ef::AaloScheduler>();
  if (name == "sincronia") return std::make_unique<ef::SincroniaScheduler>();
  if (name == "coflow") return std::make_unique<ef::CoflowMaddScheduler>();
  if (name == "echelonflow") {
    return std::make_unique<ef::EchelonMaddScheduler>(reg);
  }
  std::cerr << "unknown scheduler '" << name << "'\n";
  std::exit(2);
}

int cmd_fig2() {
  // Defer to the canonical bench logic, inlined compactly: run the three
  // policies and print the comparison row.
  std::cout << "see bench_fig2_motivating for the full panel; summary:\n";
  Table t({"policy", "comp finish (s)"});
  for (const std::string which : {"fair", "coflow", "echelonflow"}) {
    auto fabric = topology::make_big_switch(2, 1.0);
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    reg.attach(sim);
    auto sched = make_scheduler(which == "coflow" ? "coflow"
                                : which == "echelonflow" ? "echelonflow"
                                                         : "fair",
                                &reg);
    if (sched) sim.set_scheduler(sched.get());
    const auto placement = workload::make_placement(sim, fabric.hosts);
    const workload::GpuSpec slot{.name = "slot", .peak_flops = 1.0,
                                 .efficiency = 1.0};
    workload::ModelSpec model;
    model.name = "fig2";
    for (int l = 0; l < 2; ++l) {
      model.layers.push_back(workload::LayerSpec{
          .name = "l", .params = 0, .activation_bytes = 2.0,
          .fwd_flops = 1.0, .bwd_flops = 0.0});
    }
    const auto job = workload::generate_pipeline(
        {.model = model, .gpu = slot, .micro_batches = 3, .iterations = 1,
         .optimizer_fraction = 0.0},
        placement, reg, JobId{0});
    netsim::WorkflowEngine eng(&sim, &job.workflow);
    eng.launch(0.0);
    // Forward-only variant of Fig. 2: stop once the last consumer forward
    // is done (bwd flops are zero so the full run is equivalent).
    sim.run();
    // Comp finish = last forward on stage 1; with zero-size grad flows and
    // zero-length bwd tasks the makespan matches Fig. 2's comp finish.
    double comp = 0.0;
    for (const auto& n : job.workflow.nodes()) {
      if (n.kind == netsim::WfKind::kCompute &&
          n.label.rfind("it0.f.s1", 0) == 0) {
        comp = std::max(comp, eng.node_finish(n.id));
      }
    }
    t.add_row({which, Table::num(comp, 2)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_single(const Args& args) {
  const std::string paradigm = args.get("paradigm", "pp");
  const std::string sched_name = args.get("scheduler", "echelonflow");
  const int ranks = args.geti("ranks", 4);
  const int iterations = args.geti("iterations", 3);
  const double cap_gbps = args.getd("gbps", 25.0);
  const int layers = args.geti("layers", 8);
  const int hidden = args.geti("hidden", 2048);
  const double jitter = args.getd("jitter", 0.0);
  ObsArgs obs_args;
  if (!parse_obs(args, &obs_args)) return 2;

  const bool needs_ps = paradigm == "ps";
  auto fabric =
      topology::make_big_switch(ranks + (needs_ps ? 1 : 0), gbps(cap_gbps));
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  auto sched = make_scheduler(sched_name, &reg);
  netsim::SchedMode sched_mode;
  if (!parse_sched_mode(args, &sched_mode)) return 2;
  if (sched) {
    sched->set_sched_mode(sched_mode);
    sim.set_scheduler(sched.get());
  }
  netsim::TimelineRecorder timeline(sim);

  // Observability: attach only when requested -- the default run carries a
  // null sink and pays nothing (DESIGN.md §9).
  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  if (obs_args.tracing()) sim.set_trace(&recorder, obs_args.detail);
  if (obs_args.metrics()) sim.set_metrics(&registry);

  std::vector<NodeId> hosts(fabric.hosts.begin(),
                            fabric.hosts.begin() + ranks);
  const auto placement = workload::make_placement(sim, hosts);
  const workload::ModelSpec model =
      workload::make_transformer(std::max(layers, ranks), hidden, 256, 16);
  const workload::GpuSpec gpu = workload::a100();

  workload::GeneratedJob job;
  if (paradigm == "dp") {
    job = workload::generate_dp_allreduce(
        {.model = model, .gpu = gpu, .buckets = 4, .iterations = iterations},
        placement, reg, JobId{0});
  } else if (paradigm == "ps") {
    const WorkerId ps = sim.add_worker(fabric.hosts.back());
    job = workload::generate_dp_ps(
        {.model = model, .gpu = gpu, .buckets = 4, .iterations = iterations},
        placement, fabric.hosts.back(), ps, reg, JobId{0});
  } else if (paradigm == "pp") {
    job = workload::generate_pipeline(
        {.model = model,
         .gpu = gpu,
         .micro_batches = args.geti("microbatches", 6),
         .iterations = iterations,
         .compute_jitter = jitter},
        placement, reg, JobId{0});
  } else if (paradigm == "tp") {
    job = workload::generate_tensor(
        {.model = model, .gpu = gpu, .iterations = iterations}, placement,
        reg, JobId{0});
  } else if (paradigm == "fsdp") {
    job = workload::generate_fsdp({.model = model,
                                   .gpu = gpu,
                                   .iterations = iterations,
                                   .compute_jitter = jitter},
                                  placement, reg, JobId{0});
  } else if (paradigm == "ep") {
    job = workload::generate_expert(
        {.model = model, .gpu = gpu, .iterations = iterations}, placement,
        reg, JobId{0});
  } else {
    std::cerr << "unknown paradigm '" << paradigm << "'\n";
    return 2;
  }

  netsim::WorkflowEngine engine(&sim, &job.workflow);
  engine.launch(0.0);
  const SimTime makespan = sim.run();

  std::cout << job.description << "  under "
            << (sched ? sched->name() : std::string("fair")) << "\n\n";
  Table t({"iteration", "finish (s)", "duration (s)"});
  SimTime prev = 0.0;
  for (std::size_t k = 0; k < job.iteration_end.size(); ++k) {
    const SimTime f = engine.node_finish(job.iteration_end[k]);
    t.add_row({std::to_string(k), Table::num(f, 4), Table::num(f - prev, 4)});
    prev = f;
  }
  t.print(std::cout);
  std::cout << "makespan " << Table::num(makespan, 4) << " s, sum tardiness "
            << Table::num(reg.total_tardiness(), 4) << " s\n";
  if (args.flag_timeline) {
    std::cout << "\n"
              << timeline.render(makespan / 100.0, 100);
  }

  obs::MetricsSnapshot snapshot;
  if (obs_args.metrics()) snapshot = registry.snapshot();
  if (!obs_args.trace_out.empty()) {
    obs::PerfettoOptions popt;
    popt.topology = &fabric.topo;
    if (!export_trace(obs_args.trace_out, recorder,
                      obs_args.metrics() ? &snapshot : nullptr, popt)) {
      return 1;
    }
  }
  if (obs_args.metrics()) {
    if (!obs::write_metrics_csv(obs_args.metrics_out, snapshot)) {
      std::cerr << "cannot write " << obs_args.metrics_out << "\n";
      return 1;
    }
    std::cout << "wrote " << obs_args.metrics_out << "\n\n";
    obs::print_metrics_summary(std::cout, snapshot);
  }
  return 0;
}

int cmd_cluster(const Args& args) {
  ObsArgs obs_args;
  if (!parse_obs(args, &obs_args)) return 2;

  cluster::TraceConfig tcfg;
  tcfg.num_jobs = args.geti("jobs", 12);
  tcfg.seed = static_cast<std::uint64_t>(args.geti("seed", 42));
  tcfg.iterations = args.geti("iterations", 2);
  tcfg.arrival_rate = 2.0;
  const auto jobs = cluster::generate_trace(tcfg);

  std::vector<cluster::SchedulerKind> kinds;
  const std::string which = args.get("scheduler", "all");
  if (which == "all") {
    kinds = {cluster::SchedulerKind::kFairSharing,
             cluster::SchedulerKind::kSrpt,
             cluster::SchedulerKind::kCoflowMadd,
             cluster::SchedulerKind::kSincronia,
             cluster::SchedulerKind::kEchelonMadd};
  } else if (which == "fair") {
    kinds = {cluster::SchedulerKind::kFairSharing};
  } else if (which == "srpt") {
    kinds = {cluster::SchedulerKind::kSrpt};
  } else if (which == "coflow") {
    kinds = {cluster::SchedulerKind::kCoflowMadd};
  } else if (which == "sincronia") {
    kinds = {cluster::SchedulerKind::kSincronia};
  } else if (which == "echelonflow") {
    kinds = {cluster::SchedulerKind::kEchelonMadd};
  } else {
    std::cerr << "unknown scheduler '" << which << "'\n";
    return 2;
  }

  netsim::SchedMode sched_mode;
  if (!parse_sched_mode(args, &sched_mode)) return 2;

  // Optional fault injection: a scripted plan file, or a seeded chaos
  // profile drawn against the same fabric shape run_experiment will build.
  const int hosts = args.geti("hosts", 16);
  const double cap_gbps = args.getd("gbps", 25.0);
  faultsim::FaultPlan plan;
  bool have_plan = false;
  if (const std::string path = args.get("fault-plan", ""); !path.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot read fault plan " << path << "\n";
      return 2;
    }
    try {
      plan = faultsim::parse_fault_plan(in);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    have_plan = true;
  } else if (const int chaos = args.geti("chaos", 0); chaos > 0) {
    faultsim::ChaosProfile profile;
    profile.seed = static_cast<std::uint64_t>(args.geti("chaos-seed", 1));
    profile.horizon = args.getd("chaos-horizon", 2.0);
    profile.link_faults = chaos;
    profile.brownouts = chaos;
    profile.stragglers = chaos;
    const auto fabric = topology::make_big_switch(hosts, gbps(cap_gbps));
    std::size_t workers = 0;
    for (const auto& j : jobs) workers += static_cast<std::size_t>(j.ranks);
    plan = faultsim::from_chaos(profile, fabric.topo, workers, jobs.size());
    have_plan = true;
  }

  // One sweep point per scheduler, run in parallel (deterministic: results
  // come back in point order regardless of --threads; the plan is read-only
  // and shared across threads).
  std::vector<cluster::SweepPoint> points;
  points.reserve(kinds.size());
  // Per-point trace recorders: each one is written exclusively by the worker
  // thread that runs its point (recorders are thread-confined, like the
  // sweep's per-point metrics registries). unique_ptr keeps addresses stable
  // across the vector build.
  std::vector<std::unique_ptr<obs::TraceRecorder>> recorders;
  for (const auto kind : kinds) {
    cluster::ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.hosts = hosts;
    cfg.port_capacity = gbps(cap_gbps);
    cfg.sched_mode = sched_mode;
    cfg.churn_seed = static_cast<std::uint64_t>(args.geti("churn-seed", 0));
    // Intra-run data parallelism (per-component water-fill etc.); results
    // are bit-identical at any setting, so this is purely a speed knob.
    cfg.threads =
        static_cast<unsigned>(std::max(0, args.geti("intra-threads", 1)));
    if (have_plan) cfg.fault_plan = &plan;
    if (obs_args.tracing() && !obs_args.trace_out.empty()) {
      recorders.push_back(std::make_unique<obs::TraceRecorder>());
      cfg.trace_sink = recorders.back().get();
      cfg.trace_detail = obs_args.detail;
    }
    points.push_back({jobs, cfg});
  }
  cluster::SweepOptions opts;
  opts.threads = static_cast<unsigned>(std::max(0, args.geti("threads", 0)));
  const bool want_capture = obs_args.metrics() || !recorders.empty();
  cluster::SweepCapture capture;
  const auto results =
      cluster::run_sweep(points, opts, want_capture ? &capture : nullptr);

  std::vector<std::string> headers = {"scheduler", "mean iter (s)",
                                      "p99 iter (s)", "mean JCT (s)",
                                      "sum tardiness (s)"};
  if (have_plan) {
    headers.insert(headers.end(),
                   {"reroutes", "parks", "abandoned", "downtime (s)"});
  }
  Table t(headers);
  Csv csv({"scheduler", "mean_iter_s", "p99_iter_s", "mean_jct_s",
           "sum_tardiness_s", "makespan_s", "fault_events", "flow_reroutes",
           "flow_parks", "flow_retries", "flows_abandoned",
           "flow_downtime_s"});
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const auto kind = kinds[i];
    const auto& r = results[i];
    const auto iters = r.iteration_samples();
    std::vector<std::string> row = {std::string(cluster::to_string(kind)),
                                    Table::num(iters.mean(), 4),
                                    Table::num(iters.p99(), 4),
                                    Table::num(r.jct_samples().mean(), 4),
                                    Table::num(r.total_tardiness, 3)};
    if (have_plan) {
      row.push_back(std::to_string(r.flow_reroutes));
      row.push_back(std::to_string(r.flow_parks));
      row.push_back(std::to_string(r.flows_abandoned));
      row.push_back(Table::num(r.flow_downtime, 4));
    }
    t.add_row(row);
    csv.add_row({std::string(cluster::to_string(kind)), Csv::num(iters.mean()),
                 Csv::num(iters.p99()), Csv::num(r.jct_samples().mean()),
                 Csv::num(r.total_tardiness), Csv::num(r.makespan),
                 std::to_string(r.fault_events),
                 std::to_string(r.flow_reroutes),
                 std::to_string(r.flow_parks), std::to_string(r.flow_retries),
                 std::to_string(r.flows_abandoned),
                 Csv::num(r.flow_downtime)});
  }
  t.print(std::cout);
  if (const std::string path = args.get("csv", ""); !path.empty()) {
    if (!csv.write_file(path)) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
  }

  if (!recorders.empty()) {
    // One trace file per sweep point; name the link counter tracks with the
    // same fabric shape run_experiment built.
    const auto fabric = topology::make_big_switch(hosts, gbps(cap_gbps));
    obs::PerfettoOptions popt;
    popt.topology = &fabric.topo;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      const std::string path =
          kinds.size() == 1
              ? obs_args.trace_out
              : tag_path(obs_args.trace_out,
                         std::string(cluster::to_string(kinds[i])));
      const obs::MetricsSnapshot* snap =
          i < capture.point_metrics.size() ? &capture.point_metrics[i]
                                           : nullptr;
      if (!export_trace(path, *recorders[i], snap, popt)) return 1;
    }
  }
  if (obs_args.metrics()) {
    if (!obs::write_metrics_csv(obs_args.metrics_out, capture.merged)) {
      std::cerr << "cannot write " << obs_args.metrics_out << "\n";
      return 1;
    }
    std::cout << "wrote " << obs_args.metrics_out
              << " (merged across schedulers)\n\n";
    obs::print_metrics_summary(std::cout, capture.merged);
  }
  return 0;
}

int cmd_serve(const Args& args) {
  service::ServiceConfig cfg;
  const std::string sched_name = args.get("scheduler", "echelonflow");
  if (sched_name == "fair") {
    cfg.scheduler = cluster::SchedulerKind::kFairSharing;
  } else if (sched_name == "srpt") {
    cfg.scheduler = cluster::SchedulerKind::kSrpt;
  } else if (sched_name == "coflow") {
    cfg.scheduler = cluster::SchedulerKind::kCoflowMadd;
  } else if (sched_name == "sincronia") {
    cfg.scheduler = cluster::SchedulerKind::kSincronia;
  } else if (sched_name == "echelonflow") {
    cfg.scheduler = cluster::SchedulerKind::kEchelonMadd;
  } else if (sched_name == "coordinator") {
    cfg.scheduler = cluster::SchedulerKind::kCoordinator;
  } else {
    std::cerr << "unknown scheduler '" << sched_name << "'\n";
    return 2;
  }
  const std::string fabric_name = args.get("fabric", "bigswitch");
  if (fabric_name == "bigswitch") {
    cfg.fabric = cluster::FabricKind::kBigSwitch;
  } else if (fabric_name == "leafspine") {
    cfg.fabric = cluster::FabricKind::kLeafSpine;
  } else {
    std::cerr << "unknown fabric '" << fabric_name << "'\n";
    return 2;
  }
  cfg.hosts = args.geti("hosts", 16);
  cfg.port_capacity = gbps(args.getd("gbps", 25.0));
  cfg.oversubscription = args.getd("oversub", 2.0);
  cfg.threads = static_cast<unsigned>(args.geti("threads", 1));
  cfg.control_period = args.getd("control-period", 0.01);
  if (!parse_sched_mode(args, &cfg.sched_mode)) return 2;
  try {
    cfg.admission.policy = service::admission_policy_from_string(
        args.get("admission", "accept-all"));
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << " (expected accept-all|queue-with-cap|"
                             "tardiness-aware)\n";
    return 2;
  }
  cfg.admission.max_running =
      static_cast<std::uint64_t>(args.geti("max-running", 0));
  cfg.admission.queue_cap =
      static_cast<std::uint64_t>(args.geti("queue-cap", 16));
  cfg.admission.tardiness_limit = args.getd("tardiness-limit", 1.0);

  ObsArgs obs_args;
  if (!parse_obs(args, &obs_args)) return 2;
  obs::TraceRecorder recorder(1u << 20);
  obs::MetricsRegistry metrics;
  if (obs_args.tracing()) {
    cfg.trace_sink = &recorder;
    cfg.trace_detail = obs_args.detail;
  }
  if (obs_args.metrics()) cfg.metrics = &metrics;

  // Telemetry (DESIGN.md §15). All of it is derived from simulated time and
  // journaled state, so any combination of these flags leaves the service
  // results bit-identical (tests/test_service_telemetry.cpp pins this).
  const std::string prom_out = args.get("prom-out", "");
  const std::string chunk_out = args.get("trace-chunk-out", "");
  const std::string flightrec_out = args.get("flightrec-out", "");
  cfg.telemetry.metrics_every = args.getd("metrics-every", 0.0);
  cfg.telemetry.series_budget =
      static_cast<std::size_t>(std::max(0, args.geti("series-budget", 0)));
  cfg.telemetry.flightrec_capacity =
      static_cast<std::size_t>(std::max(0, args.geti("flightrec", 0)));
  cfg.telemetry.profile = args.geti("profile", 0) != 0;
  cfg.telemetry.slo.window = args.getd("slo-window", 10.0);
  if (const std::string spec = args.get("slo", ""); !spec.empty()) {
    std::string err;
    auto objectives = service::parse_slo_spec(spec, &err);
    if (!objectives) {
      std::cerr << "bad --slo spec: " << err << "\n";
      return 2;
    }
    cfg.telemetry.slo.objectives = std::move(*objectives);
  }
  if (!flightrec_out.empty() && cfg.telemetry.flightrec_capacity == 0) {
    cfg.telemetry.flightrec_capacity = 256;
  }
  if ((!prom_out.empty() || !chunk_out.empty()) &&
      cfg.telemetry.metrics_every <= 0.0) {
    cfg.telemetry.metrics_every = 0.1;
  }

  std::optional<obs::PromWriter> prom;
  if (!prom_out.empty()) {
    prom.emplace(prom_out,
                 static_cast<std::size_t>(std::max(0, args.geti("prom-rotate",
                                                                0))));
  }
  std::ofstream chunk_stream;
  std::optional<obs::TraceChunkWriter> chunk;
  if (!chunk_out.empty()) {
    chunk_stream.open(chunk_out, std::ios::trunc);
    if (!chunk_stream) {
      std::cerr << "cannot write " << chunk_out << "\n";
      return 1;
    }
    chunk.emplace(chunk_stream);
    // The chunk writer *is* the trace sink: events stream to disk at every
    // flush boundary instead of accumulating in the in-memory recorder.
    cfg.trace_sink = &*chunk;
    if (cfg.trace_detail == obs::TraceDetail::kOff) {
      cfg.trace_detail = obs::TraceDetail::kFlow;
    }
  }
  service::TelemetryOutputs touts;
  touts.prom = prom.has_value() ? &*prom : nullptr;
  touts.chunk = chunk.has_value() ? &*chunk : nullptr;
  touts.flightrec_path = flightrec_out;

  const std::string snapshot_in = args.get("snapshot-in", "");
  const std::string snapshot_out = args.get("snapshot-out", "");
  const std::uint64_t snapshot_every =
      static_cast<std::uint64_t>(args.geti("snapshot-every", 0));

  std::unique_ptr<service::ServiceLoop> loop;
  faultsim::FaultPlan chaos_plan;
  try {
    if (!snapshot_in.empty()) {
      // Configuration (scheduler, fabric, admission, chaos, generator
      // progress) comes from the snapshot; only observability flags apply.
      service::RestoreOptions ro;
      ro.trace_sink = cfg.trace_sink;
      ro.trace_detail = cfg.trace_detail;
      ro.metrics = cfg.metrics;
      ro.telemetry = touts;
      loop = service::restore_snapshot_file(snapshot_in, ro);
      std::cout << "restored " << snapshot_in << " at step "
                << loop->steps_executed() << " (t=" << loop->sim().now()
                << ", " << loop->journal().size() << " arrivals consumed)\n";
    } else {
      const int chaos = args.geti("chaos", 0);
      if (chaos > 0) {
        // Same fabric shape ServiceLoop builds internally. Stragglers stay
        // zero: service-mode workers are created at job-launch time, after
        // the plan is armed.
        const auto built =
            cfg.fabric == cluster::FabricKind::kBigSwitch
                ? topology::make_big_switch(cfg.hosts, cfg.port_capacity)
                : topology::make_leaf_spine(
                      {.leaves = std::max(1, cfg.hosts / 8),
                       .spines = 2,
                       .hosts_per_leaf = 8,
                       .host_link = cfg.port_capacity,
                       .uplink = 8 * cfg.port_capacity /
                                 (2 * cfg.oversubscription)});
        faultsim::ChaosProfile profile;
        profile.seed = static_cast<std::uint64_t>(args.geti("chaos-seed", 1));
        profile.horizon = args.getd("chaos-horizon", 2.0);
        profile.link_faults = chaos;
        profile.brownouts = chaos;
        profile.stragglers = 0;
        chaos_plan = faultsim::from_chaos(profile, built.topo,
                                          /*worker_count=*/0,
                                          /*job_count=*/args.geti("jobs", 12));
        cfg.fault_plan = &chaos_plan;
      }
      loop = std::make_unique<service::ServiceLoop>(cfg);
      loop->attach_telemetry_outputs(touts);

      const std::string arrivals_path = args.get("arrivals", "");
      if (!arrivals_path.empty()) {
        loop->set_generator(
            std::make_unique<service::TraceFileArrivalReader>(arrivals_path));
      } else {
        cluster::TraceConfig tc;
        tc.num_jobs = args.geti("jobs", 12);
        tc.arrival_rate = args.getd("rate", 2.0);
        tc.seed = static_cast<std::uint64_t>(args.geti("seed", 42));
        tc.iterations = args.geti("iterations", 2);
        const int burst = args.geti("burst-every", 0);
        const std::string arrivals_out = args.get("arrivals-out", "");
        if (!arrivals_out.empty()) {
          // Capture the exact stream the loop will consume: drain a twin
          // generator (same seed, same draw sequence) to a replayable file.
          service::PoissonArrivalGenerator twin(tc, burst);
          std::ofstream out(arrivals_out);
          if (!out) {
            std::cerr << "cannot write " << arrivals_out << "\n";
            return 1;
          }
          service::write_arrival_trace(out, service::drain(twin));
          std::cout << "wrote " << arrivals_out << "\n";
        }
        loop->set_generator(
            std::make_unique<service::PoissonArrivalGenerator>(tc, burst));
      }
    }

    // Snapshots are only valid at step boundaries (drain's final run() to
    // quiescence executes past the last boundary), so the terminal snapshot
    // is written after the step loop exhausts and *before* drain.
    while (loop->step()) {
      if (!snapshot_out.empty() && snapshot_every > 0 &&
          loop->steps_executed() % snapshot_every == 0) {
        const ScopedTimer st;
        service::save_snapshot_file(*loop, snapshot_out);
        loop->record_phase_ms("snapshot_save", st.elapsed_ms());
        // After the save, so the image matches an uninterrupted run.
        loop->note_snapshot();
      }
    }
    if (!snapshot_out.empty()) {
      const ScopedTimer st;
      service::save_snapshot_file(*loop, snapshot_out);
      loop->record_phase_ms("snapshot_save", st.elapsed_ms());
      loop->note_snapshot();
      std::cout << "wrote " << snapshot_out << "\n";
    }
    loop->drain();
    // Terminal flush so the last exposition/chunk reflects end-of-run state
    // (drain runs past the final step boundary).
    loop->flush_now();
  } catch (const service::SnapshotError& e) {
    if (loop != nullptr) loop->note_error(e.what());
    std::cerr << "snapshot error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    if (loop != nullptr) loop->note_error(e.what());
    std::cerr << "serve failed: " << e.what() << "\n";
    return 1;
  }

  loop->publish_metrics();
  const service::ServiceResult r = loop->result();
  Table t({"scheduler", "arrivals", "admitted", "queued", "rejected",
           "launched", "completed", "end (s)", "tardiness", "ctl passes"});
  t.add_row({r.scheduler_name, std::to_string(r.arrivals),
             std::to_string(r.admitted), std::to_string(r.queued),
             std::to_string(r.rejected), std::to_string(r.launched),
             std::to_string(r.completed), Table::num(r.end, 3),
             Table::num(r.total_tardiness, 3),
             std::to_string(r.control_invocations)});
  t.print(std::cout);
  if (loop->config().telemetry.enabled()) {
    std::cout << "telemetry: " << r.telemetry_flushes << " flushes";
    if (loop->slo() != nullptr) {
      std::cout << ", " << r.deadline_at_risk << " jobs deadline-at-risk";
    }
    std::cout << "\n";
  }

  if (prom.has_value()) {
    std::cout << "wrote " << prom_out << " (" << prom->writes()
              << " exposition writes)\n";
  }
  if (chunk.has_value()) {
    chunk_stream.flush();
    std::cout << "wrote " << chunk_out << " (" << chunk->chunks()
              << " chunks, " << chunk->total_events() << " events)\n";
  }
  if (!flightrec_out.empty() && loop->flight() != nullptr) {
    std::ofstream out(flightrec_out, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write " << flightrec_out << "\n";
      return 1;
    }
    loop->dump_flight(out);
    std::cout << "wrote " << flightrec_out << " ("
              << loop->flight()->recorded() << " events recorded)\n";
  }

  if (obs_args.tracing() && !obs_args.trace_out.empty()) {
    obs::PerfettoOptions popt;
    obs::MetricsSnapshot snap = metrics.snapshot();
    if (loop->config().telemetry.profile) {
      // Wall-clock self-profiling series ride into the trace as the
      // dedicated "service control" counter process (obs::kServicePid).
      // They stay out of `metrics` itself so the deterministic registries
      // never see wall time.
      const obs::MetricsSnapshot prof = loop->profile_snapshot();
      snap.series.insert(snap.series.end(), prof.series.begin(),
                         prof.series.end());
      snap.histograms.insert(snap.histograms.end(), prof.histograms.begin(),
                             prof.histograms.end());
    }
    const bool have_snap = obs_args.metrics() || !snap.empty();
    const obs::TraceRecorder* source = &recorder;
    obs::TraceRecorder merged(1u << 20);
    if (chunk.has_value()) {
      // Chunked streaming replaced the in-memory recorder; rebuild the
      // trace from the chunk file (byte-identical to an unchunked run).
      chunk_stream.close();
      std::ifstream in(chunk_out);
      try {
        obs::merge_trace_chunks(in, merged);
      } catch (const std::exception& e) {
        std::cerr << "cannot merge " << chunk_out << ": " << e.what() << "\n";
        return 1;
      }
      source = &merged;
    }
    if (!export_trace(obs_args.trace_out, *source,
                      have_snap ? &snap : nullptr, popt)) {
      return 1;
    }
  }
  if (obs_args.metrics()) {
    const obs::MetricsSnapshot snap = metrics.snapshot();
    if (!obs::write_metrics_csv(obs_args.metrics_out, snap)) {
      std::cerr << "cannot write " << obs_args.metrics_out << "\n";
      return 1;
    }
    std::cout << "wrote " << obs_args.metrics_out << "\n\n";
    obs::print_metrics_summary(std::cout, snap);
  }
  return 0;
}

void usage() {
  std::cout << "usage: echelonflow_cli <fig2|single|cluster|serve> "
               "[--key value]... [--timeline]\n"
               "see the header of tools/echelonflow_cli.cpp for options.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  if (cmd == "fig2") return cmd_fig2();
  if (cmd == "single") return cmd_single(args);
  if (cmd == "cluster") return cmd_cluster(args);
  if (cmd == "serve") return cmd_serve(args);
  usage();
  return 2;
}
