// Microbenchmarks of the RateAllocator hot path (see DESIGN.md, "Hot-path
// data layout").
//
// The allocator runs after every scheduler control() pass -- once per flow
// arrival and departure under per-event coordination -- so its per-pass cost
// bounds control-plane throughput together with the scheduler itself. Two
// regimes:
//
//   * FairShare: every flow uncapped with weight 1. Progressive filling
//     iterates until every flow is frozen by a saturated link, exercising
//     the multi-round water-fill worst case.
//   * Capped: every flow carries a MADD-style explicit rate cap (as the
//     Echelon/Coflow schedulers emit), so most flows freeze at their cap in
//     the first rounds.
//
// Flow counts match BM_EchelonMaddControlPass (64..4096) so the two
// benchmarks compose into an end-to-end control-plane latency estimate.
// Emit JSON for trajectory tracking with:
//   bench_allocator --benchmark_format=json

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "netsim/allocator.hpp"
#include "netsim/flow.hpp"
#include "topology/builders.hpp"

namespace {

using namespace echelon;

struct Population {
  topology::BuiltFabric fabric;
  std::vector<netsim::Flow> flows;
  std::vector<netsim::Flow*> active;
};

Population make_population(int n_flows, bool capped) {
  const int hosts = 32;
  Population p{topology::make_big_switch(hosts, gbps(100)), {}, {}};
  Rng rng(11);
  p.flows.reserve(static_cast<std::size_t>(n_flows));
  for (int i = 0; i < n_flows; ++i) {
    const auto src = rng.uniform_int(static_cast<std::uint64_t>(hosts));
    auto dst = rng.uniform_int(static_cast<std::uint64_t>(hosts));
    if (dst == src) dst = (dst + 1) % static_cast<std::uint64_t>(hosts);
    netsim::Flow f;
    f.id = FlowId{static_cast<std::uint64_t>(i)};
    f.spec.size = rng.uniform(1e6, 1e8);
    f.remaining = f.spec.size;
    f.weight = 1.0 + static_cast<double>(i % 3);
    if (capped) f.rate_cap = rng.uniform(0.1, 1.0) * gbps(10);
    f.path = *p.fabric.topo.route(p.fabric.hosts[src], p.fabric.hosts[dst],
                                  static_cast<std::uint64_t>(i));
    p.flows.push_back(std::move(f));
  }
  for (auto& f : p.flows) p.active.push_back(&f);
  return p;
}

void BM_RateAllocatorFairShare(benchmark::State& state) {
  Population p = make_population(static_cast<int>(state.range(0)), false);
  netsim::RateAllocator alloc(&p.fabric.topo);
  for (auto _ : state) {
    alloc.allocate(p.active);
    benchmark::DoNotOptimize(p.active);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RateAllocatorFairShare)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RateAllocatorCapped(benchmark::State& state) {
  Population p = make_population(static_cast<int>(state.range(0)), true);
  netsim::RateAllocator alloc(&p.fabric.topo);
  for (auto _ : state) {
    alloc.allocate(p.active);
    benchmark::DoNotOptimize(p.active);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RateAllocatorCapped)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

// --- incremental vs full recompute under per-pass churn ---------------------
//
// The regime AllocMode::kIncremental targets: a multi-tenant fabric where
// each control pass touches *one* job's caps (MADD repacing after an
// iteration boundary) while every other job's allocation inputs are
// unchanged. `range(0)` link-disjoint "jobs" (one src->dst host pair each)
// with 32 capped flows per job; every benchmark iteration rewrites one cap
// in job (iter % jobs) to a genuinely new value, then reallocates.
// Incremental validates jobs-1 clean components against the cache and
// water-fills only the dirty one; full recompute refills all of them. The
// pair of benchmarks quantifies the speedup (BENCH_hotpath.json,
// "speedup_incremental_one_dirty").
//
// OverlapWorstCase is the cache's adversarial input: every flow shares the
// single bottleneck pair, so each churned cap dirties the one-and-only
// component and the incremental allocator pays validation-miss plus record
// re-store on every pass with zero reuse. Its overhead budget vs full
// recompute is <= 1.15x.

struct JobbedPopulation {
  topology::BuiltFabric fabric;
  std::vector<netsim::Flow> flows;
  std::vector<netsim::Flow*> active;
  int n_jobs = 0;
  int flows_per_job = 0;
};

JobbedPopulation make_jobbed(int n_jobs, int flows_per_job) {
  JobbedPopulation p{topology::make_big_switch(2 * n_jobs, gbps(100)),
                     {},
                     {},
                     n_jobs,
                     flows_per_job};
  std::uint64_t id = 0;
  p.flows.reserve(static_cast<std::size_t>(n_jobs) * flows_per_job);
  for (int j = 0; j < n_jobs; ++j) {
    for (int k = 0; k < flows_per_job; ++k) {
      netsim::Flow f;
      f.id = FlowId{id};
      f.spec.size = 1e9;
      f.remaining = 1e9;
      f.weight = 1.0;
      // Staggered caps, every one binding (sum of caps < port capacity):
      // exactly what MADD pacing emits -- deliberate slowdown to the
      // bottleneck echelon. Each fill freezes one flow per round, the
      // progressive-filling worst case.
      f.rate_cap = gbps(0.1 * (k + 1));
      f.path = *p.fabric.topo.route(p.fabric.hosts[2 * j],
                                    p.fabric.hosts[2 * j + 1], id);
      ++id;
      p.flows.push_back(std::move(f));
    }
  }
  for (auto& f : p.flows) p.active.push_back(&f);
  return p;
}

// Rewrites one cap in job (iter % n_jobs) through the notification setter.
// The value cycle (0.26/0.52/0.78 Gbps) never collides with the staggered
// initial caps and never repeats between consecutive visits to the same job
// (n_jobs % 3 == 1 for all benchmarked sizes), so every pass has exactly
// one genuinely dirty component.
void churn_one_job(JobbedPopulation& p, std::uint64_t iter) {
  const auto job = static_cast<std::size_t>(
      iter % static_cast<std::uint64_t>(p.n_jobs));
  p.flows[job * static_cast<std::size_t>(p.flows_per_job)].set_rate_cap(
      gbps(0.26 * (1.0 + static_cast<double>(iter % 3))));
}

void one_dirty_loop(benchmark::State& state, netsim::AllocMode mode) {
  JobbedPopulation p =
      make_jobbed(static_cast<int>(state.range(0)), /*flows_per_job=*/32);
  netsim::RateAllocator alloc(&p.fabric.topo, mode);
  alloc.allocate(p.active);  // warm the arenas (and, in incremental, the cache)
  std::uint64_t iter = 0;
  for (auto _ : state) {
    churn_one_job(p, iter++);
    alloc.allocate(p.active);
    benchmark::DoNotOptimize(p.active);
  }
  state.SetItemsProcessed(state.iterations() * p.flows.size());
  const auto& s = alloc.stats();
  state.counters["reuse_frac"] = benchmark::Counter(
      s.components == 0
          ? 0.0
          : static_cast<double>(s.components_reused) /
                static_cast<double>(s.components));
}

void BM_RateAllocatorOneDirtyIncremental(benchmark::State& state) {
  one_dirty_loop(state, netsim::AllocMode::kIncremental);
}
BENCHMARK(BM_RateAllocatorOneDirtyIncremental)->Arg(4)->Arg(16)->Arg(64);

void BM_RateAllocatorOneDirtyFull(benchmark::State& state) {
  one_dirty_loop(state, netsim::AllocMode::kFullRecompute);
}
BENCHMARK(BM_RateAllocatorOneDirtyFull)->Arg(4)->Arg(16)->Arg(64);

void overlap_loop(benchmark::State& state, netsim::AllocMode mode) {
  // One job spanning a single host pair: every flow in one component.
  JobbedPopulation p =
      make_jobbed(/*n_jobs=*/1, static_cast<int>(state.range(0)));
  netsim::RateAllocator alloc(&p.fabric.topo, mode);
  alloc.allocate(p.active);
  std::uint64_t iter = 0;
  for (auto _ : state) {
    churn_one_job(p, iter++);
    alloc.allocate(p.active);
    benchmark::DoNotOptimize(p.active);
  }
  state.SetItemsProcessed(state.iterations() * p.flows.size());
}

void BM_RateAllocatorOverlapIncremental(benchmark::State& state) {
  overlap_loop(state, netsim::AllocMode::kIncremental);
}
BENCHMARK(BM_RateAllocatorOverlapIncremental)->Arg(256);

void BM_RateAllocatorOverlapFull(benchmark::State& state) {
  overlap_loop(state, netsim::AllocMode::kFullRecompute);
}
BENCHMARK(BM_RateAllocatorOverlapFull)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  const bool not_release = echelon::benchutil::warn_if_not_release();
  benchmark::AddCustomContext("echelon_build_type",
                              echelon::benchutil::kBuildType);
  if (not_release) benchmark::AddCustomContext("echelon_unoptimized", "true");
  // Build provenance: which commit produced these numbers, and whether the
  // tree was dirty (bench_util.hpp).
  benchmark::AddCustomContext("echelon_git_commit",
                              echelon::benchutil::kGitCommit);
  benchmark::AddCustomContext("echelon_git_dirty",
                              echelon::benchutil::kGitDirty);
  // Machine shape: thread-scaling numbers are only comparable between
  // identically-shaped hosts (tools/check_bench_regression.py checks this).
  benchmark::AddCustomContext(
      "echelon_hardware_concurrency",
      echelon::benchutil::hardware_concurrency_context());
  benchmark::AddCustomContext("echelon_pool_participants",
                              echelon::benchutil::pool_participants_context());
  // Behavioural fingerprint of the hot path (allocator cache hit rate,
  // reallocation counts, ...) so BENCH_hotpath.json timing shifts can be
  // cross-read against scheduler behaviour (bench_util.hpp).
  benchmark::AddCustomContext("echelon_metrics",
                              echelon::benchutil::hotpath_metrics_context());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
