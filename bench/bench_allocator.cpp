// Microbenchmarks of the RateAllocator hot path (see DESIGN.md, "Hot-path
// data layout").
//
// The allocator runs after every scheduler control() pass -- once per flow
// arrival and departure under per-event coordination -- so its per-pass cost
// bounds control-plane throughput together with the scheduler itself. Two
// regimes:
//
//   * FairShare: every flow uncapped with weight 1. Progressive filling
//     iterates until every flow is frozen by a saturated link, exercising
//     the multi-round water-fill worst case.
//   * Capped: every flow carries a MADD-style explicit rate cap (as the
//     Echelon/Coflow schedulers emit), so most flows freeze at their cap in
//     the first rounds.
//
// Flow counts match BM_EchelonMaddControlPass (64..4096) so the two
// benchmarks compose into an end-to-end control-plane latency estimate.
// Emit JSON for trajectory tracking with:
//   bench_allocator --benchmark_format=json

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "netsim/allocator.hpp"
#include "netsim/flow.hpp"
#include "topology/builders.hpp"

namespace {

using namespace echelon;

struct Population {
  topology::BuiltFabric fabric;
  std::vector<netsim::Flow> flows;
  std::vector<netsim::Flow*> active;
};

Population make_population(int n_flows, bool capped) {
  const int hosts = 32;
  Population p{topology::make_big_switch(hosts, gbps(100)), {}, {}};
  Rng rng(11);
  p.flows.reserve(static_cast<std::size_t>(n_flows));
  for (int i = 0; i < n_flows; ++i) {
    const auto src = rng.uniform_int(static_cast<std::uint64_t>(hosts));
    auto dst = rng.uniform_int(static_cast<std::uint64_t>(hosts));
    if (dst == src) dst = (dst + 1) % static_cast<std::uint64_t>(hosts);
    netsim::Flow f;
    f.id = FlowId{static_cast<std::uint64_t>(i)};
    f.spec.size = rng.uniform(1e6, 1e8);
    f.remaining = f.spec.size;
    f.weight = 1.0 + static_cast<double>(i % 3);
    if (capped) f.rate_cap = rng.uniform(0.1, 1.0) * gbps(10);
    f.path = *p.fabric.topo.route(p.fabric.hosts[src], p.fabric.hosts[dst],
                                  static_cast<std::uint64_t>(i));
    p.flows.push_back(std::move(f));
  }
  for (auto& f : p.flows) p.active.push_back(&f);
  return p;
}

void BM_RateAllocatorFairShare(benchmark::State& state) {
  Population p = make_population(static_cast<int>(state.range(0)), false);
  netsim::RateAllocator alloc(&p.fabric.topo);
  for (auto _ : state) {
    alloc.allocate(p.active);
    benchmark::DoNotOptimize(p.active);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RateAllocatorFairShare)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RateAllocatorCapped(benchmark::State& state) {
  Population p = make_population(static_cast<int>(state.range(0)), true);
  netsim::RateAllocator alloc(&p.fabric.topo);
  for (auto _ : state) {
    alloc.allocate(p.active);
    benchmark::DoNotOptimize(p.active);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RateAllocatorCapped)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
