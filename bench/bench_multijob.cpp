// EXT-A: multi-job cluster evaluation (the evaluation a full EchelonFlow
// paper would contain).
//
// Poisson arrivals, mixed paradigms, big-switch fabric; sweeps cluster load
// (by packing the same jobs onto fewer hosts) and compares the three
// schedulers on mean/p99 iteration time, mean JCT, GPU idleness, and the
// Eq. 4 tardiness objective.
//
// Expected shape: with little port sharing all schedulers tie; as load
// grows, EchelonFlow-MADD wins on tardiness and iteration time because it
// (a) keeps staggered deadlines for PP/FSDP jobs where Coflow actively
// hurts, and (b) degenerates to Coflow-MADD for the compliant paradigms.

#include <iostream>

#include "cluster/sweep.hpp"
#include "cluster/trace.hpp"
#include "common/table.hpp"

int main() {
  using namespace echelon;

  cluster::TraceConfig tcfg;
  tcfg.num_jobs = 14;
  tcfg.seed = 20260704;
  tcfg.arrival_rate = 4.0;
  tcfg.iterations = 3;
  tcfg.min_width = 2048;
  tcfg.max_width = 4096;
  tcfg.batch = 64;
  const auto jobs = cluster::generate_trace(tcfg);

  std::cout << "=== EXT-A: mixed-paradigm cluster, " << jobs.size()
            << " jobs, load sweep ===\n\n";

  // Build the full (hosts x scheduler) grid up front and run it through the
  // parallel sweep runner; results come back in point order, so the tables
  // print exactly as the serial loop did.
  const std::vector<int> host_counts = {32, 16, 8};
  const std::vector<cluster::SchedulerKind> kinds = {
      cluster::SchedulerKind::kFairSharing, cluster::SchedulerKind::kSrpt,
      cluster::SchedulerKind::kCoflowMadd,
      cluster::SchedulerKind::kEchelonMadd};

  std::vector<cluster::SweepPoint> points;
  points.reserve(host_counts.size() * kinds.size());
  for (const int hosts : host_counts) {
    for (const auto kind : kinds) {
      cluster::ExperimentConfig cfg;
      cfg.scheduler = kind;
      cfg.hosts = hosts;
      cfg.port_capacity = gbps(25);
      points.push_back({jobs, cfg});
    }
  }
  const auto results = cluster::run_sweep(points);

  std::size_t p = 0;
  for (const int hosts : host_counts) {
    std::cout << "-- " << hosts << " hosts (higher load = fewer hosts) --\n";
    Table table({"scheduler", "mean iter (s)", "p99 iter (s)",
                 "mean JCT (s)", "GPU idle", "sum tardiness (s)",
                 "makespan (s)"});
    for (const auto kind : kinds) {
      const auto& r = results[p++];
      const auto iters = r.iteration_samples();
      table.add_row({std::string(cluster::to_string(kind)),
                     Table::num(iters.mean(), 4), Table::num(iters.p99(), 4),
                     Table::num(r.jct_samples().mean(), 4),
                     Table::num(100.0 * r.mean_idle_fraction(), 1) + "%",
                     Table::num(r.total_tardiness, 3),
                     Table::num(r.makespan, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "expected shape: echelonflow-madd lowest tardiness at every "
               "load; gap vs\nfair/coflow widens as ports get shared.\n";
  return 0;
}
