// EXT-J: profiling-accuracy ablation.
//
// EchelonFlow "relies on accurate profiling of the computation time to
// construct the arrangement function" (§5). This bench perturbs every
// compute task by multiplicative jitter while the declared arrangements
// keep the *profiled mean* durations, and measures how the scheduler's
// advantage erodes as reality deviates from the profile.
//
// Expected shape: at zero jitter EchelonFlow holds its full margin over
// Coflow; the margin narrows as jitter grows but degrades gracefully --
// stale deadlines still encode the right *order*, so EchelonFlow should not
// fall below fair sharing even at heavy jitter.

#include <iostream>
#include <memory>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/pp.hpp"

namespace {

using namespace echelon;

double run(const std::string& which, double jitter, std::uint64_t seed) {
  auto fabric = topology::make_big_switch(4, gbps(10));
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  std::unique_ptr<netsim::NetworkScheduler> sched;
  if (which == "coflow") {
    sched = std::make_unique<ef::CoflowMaddScheduler>();
  } else if (which == "echelonflow") {
    sched = std::make_unique<ef::EchelonMaddScheduler>(&reg);
  }
  if (sched) sim.set_scheduler(sched.get());

  const auto placement = workload::make_placement(sim, fabric.hosts);
  const auto job = workload::generate_pipeline(
      {.model = workload::make_transformer(8, 4096, 512, 8),
       .gpu = workload::a100(),
       .micro_batches = 6,
       .iterations = 3,
       .compute_jitter = jitter,
       .jitter_seed = seed},
      placement, reg, JobId{0});
  netsim::WorkflowEngine engine(&sim, &job.workflow);
  engine.launch(0.0);
  return sim.run();
}

}  // namespace

int main() {
  std::cout << "=== EXT-J: arrangement accuracy vs compute jitter (PP job, "
               "5 seeds per cell) ===\n\n";
  Table t({"jitter", "fair (s)", "coflow (s)", "echelonflow (s)",
           "echelon vs fair", "echelon vs coflow"});
  for (const double jitter : {0.0, 0.05, 0.15, 0.30}) {
    Samples fair, coflow, echelon;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      fair.add(run("fair", jitter, seed));
      coflow.add(run("coflow", jitter, seed));
      echelon.add(run("echelonflow", jitter, seed));
    }
    t.add_row({Table::num(100.0 * jitter, 0) + "%",
               Table::num(fair.mean(), 4), Table::num(coflow.mean(), 4),
               Table::num(echelon.mean(), 4),
               Table::num(100.0 * (fair.mean() - echelon.mean()) /
                              fair.mean(),
                          1) + "%",
               Table::num(100.0 * (coflow.mean() - echelon.mean()) /
                              coflow.mean(),
                          1) + "%"});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: the echelon margin narrows with jitter but "
               "stays >= 0 vs fair\n(ordering knowledge survives inexact "
               "distances).\n";
  return 0;
}
