// EXT-F: backend algorithm ablation (§5's NCCL / Gloo / MPI boxes).
//
// The same DP-AllReduce job decomposed through the three backend algorithm
// families -- ring (NCCL), recursive halving-doubling (Gloo, power-of-two
// ranks), and direct all-to-all exchange (MPI) -- run under fair sharing
// and EchelonFlow-MADD. On a non-blocking fabric all three are bandwidth-
// comparable; the flow structure differs (step counts, per-flow sizes, who
// talks to whom), which is what the scheduler actually sees.

#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "runtime/backend.hpp"
#include "topology/builders.hpp"
#include "workload/paradigm.hpp"

namespace {

using namespace echelon;

// Minimal DP iteration built directly on a Backend: compute, then one
// all-reduce of the full gradient through the chosen algorithm.
struct Outcome {
  double allreduce_time = 0.0;
  int flows = 0;
};

Outcome run(runtime::BackendKind kind, bool echelon) {
  auto fabric = topology::make_big_switch(8, gbps(25));
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  ef::EchelonMaddScheduler sched(&reg);
  if (echelon) sim.set_scheduler(&sched);

  runtime::Backend backend(kind);
  netsim::Workflow wf;
  const EchelonFlowId ef = reg.create(
      JobId{0},
      ef::Arrangement::coflow(backend.all_reduce_cardinality(8)));
  collective::FlowTag tag{.job = JobId{0}, .group = ef};
  const auto h = backend.all_reduce(wf, fabric.hosts, gib(1), tag, "ar");

  netsim::WorkflowEngine eng(&sim, &wf);
  eng.launch(0.0);
  sim.run();
  Outcome o;
  o.allreduce_time = eng.node_finish(h.done);
  o.flows = static_cast<int>(h.flow_nodes.size());
  return o;
}

}  // namespace

int main() {
  std::cout << "=== EXT-F: all-reduce of 1 GiB across 8 ranks, per backend "
               "algorithm ===\n\n";
  Table t({"backend", "algorithm", "#flows", "time, fair (s)",
           "time, echelonflow (s)"});
  struct Row {
    runtime::BackendKind kind;
    const char* algo;
  };
  for (const Row row : {Row{runtime::BackendKind::kNccl, "ring"},
                        Row{runtime::BackendKind::kGloo, "halving-doubling"},
                        Row{runtime::BackendKind::kMpi, "direct exchange"}}) {
    const Outcome fair = run(row.kind, false);
    const Outcome ech = run(row.kind, true);
    t.add_row({to_string(row.kind), row.algo, std::to_string(fair.flows),
               Table::num(fair.allreduce_time, 4),
               Table::num(ech.allreduce_time, 4)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: ring and halving-doubling tie (both "
               "bandwidth-optimal on a\nnon-blocking fabric); two-round direct "
               "exchange moves the same per-rank volume; the scheduler\nchoice is "
               "neutral for a lone Coflow-compliant collective (Property "
               "2).\n";
  return 0;
}
