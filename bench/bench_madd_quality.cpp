// EXT-B: heuristic quality of the MADD adaptation vs. the exact optimum
// (supports Property 1).
//
// EchelonFlow scheduling is NP-hard (Property 3), so the paper proposes a
// MADD-derived heuristic (Property 4). On tiny single-bottleneck instances
// the optimum is computable by exhaustive search over priority orders; this
// bench runs the *actual simulator + EchelonFlow-MADD scheduler* on random
// instances and reports its max-tardiness against (a) preemptive EDF and
// (b) the exhaustive optimum.
//
// Expected: ratio 1.00 on (effectively) every instance -- on one bottleneck
// the scheduler reduces to EDF, which is optimal (Horn 1974).

#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/exhaustive.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

int main() {
  using namespace echelon;
  using ef::MiniFlow;

  constexpr int kInstances = 200;
  Rng rng(99);

  Samples ratio_vs_opt;
  Samples ratio_edf_vs_opt;
  int optimal_hits = 0;

  for (int inst = 0; inst < kInstances; ++inst) {
    // Random instance: 3-6 flows, one shared source->dest port pair
    // (single bottleneck), arbitrary releases, sizes, offsets.
    const int n = 3 + static_cast<int>(rng.uniform_int(4));
    std::vector<MiniFlow> flows;
    std::vector<Duration> offsets;
    double off = 0.0;
    std::vector<SimTime> releases;
    for (int i = 0; i < n; ++i) {
      MiniFlow f;
      f.release = (i == 0 ? 0.0 : releases.back()) + rng.uniform(0.0, 2.0);
      releases.push_back(f.release);
      f.size = rng.uniform(0.5, 4.0);
      offsets.push_back(off);
      off += rng.uniform(0.0, 2.0);
      flows.push_back(f);
    }
    // Deadlines anchored at the head release (reference time).
    for (int i = 0; i < n; ++i) {
      flows[static_cast<std::size_t>(i)].deadline =
          flows[0].release + offsets[static_cast<std::size_t>(i)];
    }

    // (a) run the real scheduler in the simulator.
    auto fabric = topology::make_big_switch(2, 1.0);
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    reg.attach(sim);
    ef::EchelonMaddScheduler sched(&reg);
    sim.set_scheduler(&sched);
    const EchelonFlowId efid =
        reg.create(JobId{0}, ef::Arrangement::from_offsets(offsets));
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(flows[static_cast<std::size_t>(i)].release,
                      [&, i](netsim::Simulator& s) {
                        s.submit_flow(netsim::FlowSpec{
                            .src = fabric.hosts[0],
                            .dst = fabric.hosts[1],
                            .size = flows[static_cast<std::size_t>(i)].size,
                            .group = efid,
                            .index_in_group = i});
                      });
    }
    sim.run();
    const double madd = reg.get(efid).tardiness();

    // (b) EDF and (c) exhaustive optimum on the same instance.
    const double edf =
        ef::max_tardiness(flows, ef::simulate_edf(flows, 1.0));
    const auto best =
        ef::exhaustive_best(flows, 1.0, [&](const auto& finish) {
          return ef::max_tardiness(flows, finish);
        });

    ratio_vs_opt.add(madd / std::max(best.objective, 1e-9));
    ratio_edf_vs_opt.add(edf / std::max(best.objective, 1e-9));
    if (madd <= best.objective + 1e-6) ++optimal_hits;
  }

  std::cout << "=== EXT-B: EchelonFlow-MADD vs exhaustive optimum ("
            << kInstances << " random single-bottleneck instances) ===\n\n";
  Table t({"policy", "mean ratio to optimal", "max ratio", "optimal hits"});
  t.add_row({"echelonflow-madd (simulator)",
             Table::num(ratio_vs_opt.mean(), 4),
             Table::num(ratio_vs_opt.max(), 4),
             std::to_string(optimal_hits) + "/" + std::to_string(kInstances)});
  t.add_row({"preemptive EDF (analytic)",
             Table::num(ratio_edf_vs_opt.mean(), 4),
             Table::num(ratio_edf_vs_opt.max(), 4), "-"});
  t.print(std::cout);
  std::cout << "\nexpected: both rows at 1.0 -- the MADD adaptation reduces "
               "to EDF on a\nsingle bottleneck, which provably minimizes "
               "maximum tardiness.\n";
  return 0;
}
