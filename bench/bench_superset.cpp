// EXT-D: Property 2 -- Coflow is a special case of EchelonFlow.
//
// On random instances whose every group uses the Eq. 5 (all-equal-ideal)
// arrangement, EchelonFlow-MADD must produce the *same flow finish times*
// as Coflow-MADD (both implement SEBF + MADD + backfill; the tardiness
// metric with a common ideal finish time reduces to coflow completion
// time). Reports the max per-flow finish-time deviation across instances.
//
// Note: groups are released together (same reference instant), where the
// metric map is exact; staggered coflow arrivals age differently under the
// two ranking metrics (CCT vs tardiness), which is the one intended
// behavioural difference -- also measured below.

#include <iostream>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

namespace {

using namespace echelon;

struct Instance {
  struct F {
    std::size_t src, dst;
    Bytes size;
    std::uint64_t group;
    int index;
  };
  int hosts = 8;
  std::vector<F> flows;
  std::vector<int> group_sizes;
};

Instance random_instance(Rng& rng) {
  Instance inst;
  const int groups = 1 + static_cast<int>(rng.uniform_int(4));
  for (int g = 0; g < groups; ++g) {
    const int members = 1 + static_cast<int>(rng.uniform_int(6));
    inst.group_sizes.push_back(members);
    for (int m = 0; m < members; ++m) {
      Instance::F f;
      f.src = rng.uniform_int(static_cast<std::uint64_t>(inst.hosts));
      f.dst = rng.uniform_int(static_cast<std::uint64_t>(inst.hosts));
      if (f.dst == f.src) f.dst = (f.dst + 1) % inst.hosts;
      f.size = rng.uniform(1.0, 50.0);
      f.group = static_cast<std::uint64_t>(g);
      f.index = m;
      inst.flows.push_back(f);
    }
  }
  return inst;
}

// Runs the instance under a scheduler; all flows released at t=0.
std::vector<SimTime> run_instance(const Instance& inst, bool echelon) {
  auto fabric = topology::make_big_switch(inst.hosts, 10.0);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  std::unique_ptr<netsim::NetworkScheduler> sched;
  if (echelon) {
    for (const int n : inst.group_sizes) {
      reg.create(JobId{0}, ef::Arrangement::coflow(n));
    }
    sched = std::make_unique<ef::EchelonMaddScheduler>(&reg);
  } else {
    sched = std::make_unique<ef::CoflowMaddScheduler>();
  }
  sim.set_scheduler(sched.get());

  std::vector<FlowId> ids;
  for (const auto& f : inst.flows) {
    ids.push_back(sim.submit_flow(netsim::FlowSpec{
        .src = fabric.hosts[f.src],
        .dst = fabric.hosts[f.dst],
        .size = f.size,
        .group = EchelonFlowId{f.group},
        .index_in_group = f.index}));
  }
  sim.run();
  std::vector<SimTime> finishes;
  for (const FlowId id : ids) finishes.push_back(sim.flow(id).finish_time);
  return finishes;
}

}  // namespace

int main() {
  constexpr int kInstances = 100;
  Rng rng(4242);
  Samples deviations;
  int exact = 0;
  for (int i = 0; i < kInstances; ++i) {
    const Instance inst = random_instance(rng);
    const auto coflow = run_instance(inst, false);
    const auto echelon = run_instance(inst, true);
    double dev = 0.0;
    for (std::size_t j = 0; j < coflow.size(); ++j) {
      dev = std::max(dev, std::abs(coflow[j] - echelon[j]) /
                              std::max(coflow[j], 1e-9));
    }
    deviations.add(dev);
    if (dev < 1e-6) ++exact;
  }

  std::cout << "=== EXT-D: Property 2 -- EchelonFlow(Eq. 5) vs Coflow-MADD ("
            << kInstances << " random instances, simultaneous release) "
            << "===\n\n";
  Table t({"metric", "value"});
  t.add_row({"instances with identical schedules",
             std::to_string(exact) + "/" + std::to_string(kInstances)});
  t.add_row({"mean max relative deviation", Table::num(deviations.mean(), 9)});
  t.add_row({"worst max relative deviation", Table::num(deviations.max(), 9)});
  t.print(std::cout);
  std::cout << "\nexpected: all instances identical -- a Coflow is exactly "
               "an EchelonFlow\nwith the Eq. 5 arrangement.\n";
  return 0;
}
