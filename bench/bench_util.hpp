// Shared helpers for the benchmark binaries: run a single generated job
// under a named scheduler and collect timing/tardiness/idleness.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/paradigm.hpp"

namespace echelon::benchutil {

struct SingleJobResult {
  std::vector<SimTime> iteration_finish;
  SimTime makespan = 0.0;
  double total_tardiness = 0.0;
  double mean_idle_fraction = 0.0;

  [[nodiscard]] Duration steady_iteration() const {
    if (iteration_finish.size() < 2) {
      return iteration_finish.empty() ? 0.0 : iteration_finish[0];
    }
    return iteration_finish.back() -
           iteration_finish[iteration_finish.size() - 2];
  }
};

// `generate` builds the job against the provided simulator/placement/
// registry; the helper wires the selected scheduler ("fair", "coflow",
// "echelonflow") and runs to quiescence.
inline SingleJobResult run_single_job(
    const std::string& scheduler, int hosts, BytesPerSec port_capacity,
    const std::function<workload::GeneratedJob(
        netsim::Simulator&, const workload::Placement&, ef::Registry&)>&
        generate) {
  auto fabric = topology::make_big_switch(hosts, port_capacity);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry registry;
  registry.attach(sim);

  std::unique_ptr<netsim::NetworkScheduler> sched;
  if (scheduler == "coflow") {
    sched = std::make_unique<ef::CoflowMaddScheduler>();
  } else if (scheduler == "echelonflow") {
    sched = std::make_unique<ef::EchelonMaddScheduler>(&registry);
  }
  if (sched) sim.set_scheduler(sched.get());

  const auto placement = workload::make_placement(sim, fabric.hosts);
  const workload::GeneratedJob job = generate(sim, placement, registry);

  netsim::WorkflowEngine engine(&sim, &job.workflow);
  engine.launch(0.0);
  SingleJobResult r;
  r.makespan = sim.run();
  for (const netsim::WfNodeId n : job.iteration_end) {
    r.iteration_finish.push_back(engine.node_finish(n));
  }
  r.total_tardiness = registry.total_tardiness();
  double idle = 0.0;
  for (const WorkerId w : placement.workers) {
    idle += sim.worker(w).idle_fraction();
  }
  r.mean_idle_fraction =
      placement.workers.empty()
          ? 0.0
          : idle / static_cast<double>(placement.workers.size());
  return r;
}

}  // namespace echelon::benchutil
