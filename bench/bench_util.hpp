// Shared helpers for the benchmark binaries: run a single generated job
// under a named scheduler and collect timing/tardiness/idleness.

#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/experiment.hpp"
#include "cluster/trace.hpp"
#include "common/pool.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "obs/metrics.hpp"
#include "topology/builders.hpp"
#include "workload/paradigm.hpp"

// CMake build type baked into every bench binary (see bench/CMakeLists.txt;
// `$<CONFIG>` resolves to CMAKE_BUILD_TYPE for single-config generators).
// The BENCH_hotpath.json baselines were once recorded from a Debug build --
// google-benchmark's own `library_build_type` field only reflects how the
// *library* was compiled, so nothing flagged it. Numbers from unoptimized
// builds must never silently become baselines again: every bench warns
// loudly and tags its JSON context when the build is not Release.
#ifndef ECHELON_BUILD_TYPE
#define ECHELON_BUILD_TYPE "unspecified"
#endif

// Build provenance, also baked in by bench/CMakeLists.txt at configure time:
// the short commit hash and whether the working tree had uncommitted changes.
// Every gbench main records both in its JSON context (`echelon_git_commit` /
// `echelon_git_dirty`) so BENCH_hotpath.json entries can always be traced
// back to the exact code that produced them -- and dirty-tree numbers are
// visibly marked as such. Unknown (no git at configure time) degrades to
// "unknown"/"true": never trustworthy-looking by accident.
#ifndef ECHELON_GIT_COMMIT
#define ECHELON_GIT_COMMIT "unknown"
#endif
#ifndef ECHELON_GIT_DIRTY
#define ECHELON_GIT_DIRTY "true"
#endif

namespace echelon::benchutil {

inline constexpr const char* kBuildType = ECHELON_BUILD_TYPE;
inline constexpr const char* kGitCommit = ECHELON_GIT_COMMIT;
inline constexpr const char* kGitDirty = ECHELON_GIT_DIRTY;

// True only for fully optimized build types suitable for recording
// baselines (Release / RelWithDebInfo / MinSizeRel; RelWithDebInfo is -O2
// but we keep baselines comparable by recording them from Release only).
[[nodiscard]] inline bool release_build() noexcept {
  return std::string_view(kBuildType) == "Release";
}

// Loud stderr banner when the binary was not built for measurement. Returns
// true when a warning was emitted so google-benchmark mains can also tag
// their JSON context (benchmark::AddCustomContext).
inline bool warn_if_not_release() {
  if (release_build()) return false;
  std::fprintf(stderr,
               "*** WARNING: benchmark built with CMAKE_BUILD_TYPE=%s, not "
               "Release.\n*** Timings are NOT comparable to "
               "BENCH_hotpath.json baselines; do not record them.\n",
               kBuildType);
  return true;
}

// --- machine-shape context ---------------------------------------------------
// Every gbench main records the host's hardware concurrency and the shared
// ThreadPool's participant count in its JSON context
// (`echelon_hardware_concurrency` / `echelon_pool_participants`). The
// throughput_vs_threads bench family only makes sense relative to the
// machine shape it ran on; tools/check_bench_regression.py refuses to gate
// thread-scaling numbers against a baseline recorded on a differently-
// shaped host.
[[nodiscard]] inline std::string hardware_concurrency_context() {
  return std::to_string(std::thread::hardware_concurrency());
}

[[nodiscard]] inline std::string pool_participants_context() {
  return std::to_string(ThreadPool::shared().concurrency());
}

// --- metrics context for machine-readable bench output -----------------------
// BENCH_hotpath.json runs carry an `echelon_metrics` context blob: the
// scalar instruments (counters + gauges) of a canonical small cluster run,
// serialized as one JSON object. Timing trajectories can then be cross-read
// against *behaviour* -- a perf win that coincides with a collapsed
// allocator cache hit rate is a different story from one with identical
// counters. Histograms and series are deliberately omitted (too bulky for a
// context string; export them through --metrics-out instead).

// Serializes a snapshot's counters and gauges as a flat JSON object.
// Instrument names are dot-separated identifiers (never need escaping).
inline std::string metrics_snapshot_json(const obs::MetricsSnapshot& snap) {
  std::string out = "{";
  bool first = true;
  const auto append = [&](const std::string& name, const std::string& value) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += value;
  };
  for (const auto& [name, value] : snap.counters) {
    append(name, std::to_string(value));
  }
  char buf[32];
  for (const auto& [name, value] : snap.gauges) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    append(name, buf);
  }
  out += '}';
  return out;
}

// Runs the canonical small hot-path scenario (a short multi-paradigm
// cluster trace under EchelonFlow-MADD) with a metrics registry attached
// and returns its scalar snapshot as JSON. Deterministic: the run is seeded
// and the one host-timing gauge (run.wall_ms) is stripped, so regenerated
// BENCH_hotpath.json context blobs diff clean.
inline std::string hotpath_metrics_context() {
  cluster::TraceConfig tcfg;
  tcfg.num_jobs = 6;
  tcfg.seed = 42;
  tcfg.arrival_rate = 3.0;
  tcfg.iterations = 2;
  const auto jobs = cluster::generate_trace(tcfg);

  obs::MetricsRegistry registry;
  cluster::ExperimentConfig cfg;
  cfg.scheduler = cluster::SchedulerKind::kEchelonMadd;
  cfg.metrics = &registry;
  (void)cluster::run_experiment(jobs, cfg);

  obs::MetricsSnapshot snap = registry.snapshot();
  std::erase_if(snap.gauges,
                [](const auto& g) { return g.first == "run.wall_ms"; });
  return metrics_snapshot_json(snap);
}

struct SingleJobResult {
  std::vector<SimTime> iteration_finish;
  SimTime makespan = 0.0;
  double total_tardiness = 0.0;
  double mean_idle_fraction = 0.0;

  [[nodiscard]] Duration steady_iteration() const {
    if (iteration_finish.size() < 2) {
      return iteration_finish.empty() ? 0.0 : iteration_finish[0];
    }
    return iteration_finish.back() -
           iteration_finish[iteration_finish.size() - 2];
  }
};

// `generate` builds the job against the provided simulator/placement/
// registry; the helper wires the selected scheduler ("fair", "coflow",
// "echelonflow") and runs to quiescence.
inline SingleJobResult run_single_job(
    const std::string& scheduler, int hosts, BytesPerSec port_capacity,
    const std::function<workload::GeneratedJob(
        netsim::Simulator&, const workload::Placement&, ef::Registry&)>&
        generate) {
  auto fabric = topology::make_big_switch(hosts, port_capacity);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry registry;
  registry.attach(sim);

  std::unique_ptr<netsim::NetworkScheduler> sched;
  if (scheduler == "coflow") {
    sched = std::make_unique<ef::CoflowMaddScheduler>();
  } else if (scheduler == "echelonflow") {
    sched = std::make_unique<ef::EchelonMaddScheduler>(&registry);
  }
  if (sched) sim.set_scheduler(sched.get());

  const auto placement = workload::make_placement(sim, fabric.hosts);
  const workload::GeneratedJob job = generate(sim, placement, registry);

  netsim::WorkflowEngine engine(&sim, &job.workflow);
  engine.launch(0.0);
  SingleJobResult r;
  r.makespan = sim.run();
  for (const netsim::WfNodeId n : job.iteration_end) {
    r.iteration_finish.push_back(engine.node_finish(n));
  }
  r.total_tardiness = registry.total_tardiness();
  double idle = 0.0;
  for (const WorkerId w : placement.workers) {
    idle += sim.worker(w).idle_fraction();
  }
  r.mean_idle_fraction =
      placement.workers.empty()
          ? 0.0
          : idle / static_cast<double>(placement.workers.size());
  return r;
}

}  // namespace echelon::benchutil
