// Equivalence-class water-fill vs per-flow water-fill (DESIGN.md §11).
//
// Collective traffic is many flows over few routes: a 1024-GPU ring emits
// thousands of flows but only as many distinct routed paths as there are
// adjacent host pairs. The class-granularity fill exploits that by running
// the max-min loop over (route, weight, cap) equivalence classes and
// fanning rates back with one dense scatter, so per-pass cost scales with
// *distinct routes*, not flows. This benchmark quantifies both sides of
// that bet on a 64-host big-switch fabric:
//
//   * The grid (flows x routes): weight-1 flows with MADD-style staggered
//     per-route caps (what the Echelon/Coflow schedulers emit), so every
//     route is one (route, weight, cap) class and the progressive fill
//     freezes one class per round -- the multi-round worst case where the
//     per-flow fill's cost is O(flows x rounds) and the class fill's is
//     O(routes x rounds). The headline comparison (BENCH_hotpath.json
//     "speedup_class_fill_64k_512routes") is flows:65536/routes:512, class
//     vs per-flow, budget >= 5x.
//   * AllDistinct -- the adversarial input: every flow carries a direct
//     path write and no interned RouteId, so the partition degenerates to
//     65536 sentinel singleton classes and the class fill pays its
//     bookkeeping with zero compression. Overhead budget vs the per-flow
//     fill is <= 1.05x ("overhead_class_fill_all_distinct").
//
// Benchmark names carry a "routes:" argument; tools/check_bench_regression.py
// treats that as a structural family (excluded from the machine-speed
// calibration median, like "threads:"). Emit JSON for trajectory tracking
// with: bench_route_class --benchmark_format=json

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "netsim/allocator.hpp"
#include "netsim/flow.hpp"
#include "topology/builders.hpp"
#include "topology/route_table.hpp"

namespace {

using namespace echelon;

constexpr int kHosts = 64;

struct Population {
  topology::BuiltFabric fabric;
  topology::RouteTable table;
  std::vector<netsim::Flow> flows;
  std::vector<netsim::Flow*> active;

  Population() : fabric(topology::make_big_switch(kHosts, gbps(100))),
                 table(&fabric.topo) {}
};

// `n_flows` weight-1 flows striped over `n_routes` distinct (src, dst)
// pairs, every flow's path interned through one RouteTable so flows on the
// same pair share the RouteId the class partition groups on. Each route
// carries a distinct staggered rate cap, every one binding and sized so no
// link saturates (sum of caps per port < capacity): the fill freezes
// exactly one class per round, the progressive-filling worst case.
Population make_population(int n_flows, int n_routes, bool interned) {
  Population p;
  std::vector<RouteId> routes;
  routes.reserve(static_cast<std::size_t>(n_routes));
  for (int r = 0; r < n_routes; ++r) {
    const int src = r % kHosts;
    int dst = (src + 1 + r / kHosts) % kHosts;
    if (dst == src) dst = (dst + 1) % kHosts;
    const auto rid =
        p.table.route(p.fabric.hosts[static_cast<std::size_t>(src)],
                      p.fabric.hosts[static_cast<std::size_t>(dst)],
                      static_cast<std::uint64_t>(r));
    routes.push_back(*rid);
  }
  p.flows.reserve(static_cast<std::size_t>(n_flows));
  for (int i = 0; i < n_flows; ++i) {
    netsim::Flow f;
    f.id = FlowId{static_cast<std::uint64_t>(i)};
    f.spec.size = 1e12;
    f.remaining = f.spec.size;
    f.weight = 1.0;
    const int r = i % n_routes;
    const RouteId rid = routes[static_cast<std::size_t>(r)];
    f.path = p.table.path(rid);
    // Strictly increasing per-route caps; ~1024 flows per port at the top
    // grid point average ~0.03 Gbps each, well under the 100 Gbps port.
    f.rate_cap = gbps(0.02 * (1.0 + static_cast<double>(r) /
                                        static_cast<double>(n_routes)));
    // When not interned the allocator sees a direct path write (invalid
    // RouteId) and must give the flow its own sentinel singleton class.
    if (interned) f.route = rid;
    p.flows.push_back(std::move(f));
  }
  for (auto& f : p.flows) p.active.push_back(&f);
  return p;
}

void fill_loop(benchmark::State& state, Population& p, netsim::FillMode fill) {
  netsim::RateAllocator alloc(&p.fabric.topo, netsim::AllocMode::kFullRecompute,
                              fill);
  alloc.allocate(p.active);  // warm the arenas: steady state allocates nothing
  for (auto _ : state) {
    alloc.allocate(p.active);
    benchmark::DoNotOptimize(p.active);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.flows.size()));
  const auto& s = alloc.stats();
  state.counters["flows_per_class"] = benchmark::Counter(
      s.classes == 0 ? 1.0
                     : static_cast<double>(s.class_members) /
                           static_cast<double>(s.classes));
}

// --- the grid: many flows, few routes ----------------------------------------

void BM_RouteClassFill(benchmark::State& state) {
  Population p = make_population(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(1)),
                                 /*interned=*/true);
  fill_loop(state, p, netsim::FillMode::kClass);
}
BENCHMARK(BM_RouteClassFill)
    ->ArgNames({"flows", "routes"})
    ->Args({16384, 64})
    ->Args({16384, 512})
    ->Args({65536, 64})
    ->Args({65536, 512});

void BM_RouteClassFillPerFlow(benchmark::State& state) {
  Population p = make_population(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(1)),
                                 /*interned=*/true);
  fill_loop(state, p, netsim::FillMode::kPerFlow);
}
BENCHMARK(BM_RouteClassFillPerFlow)
    ->ArgNames({"flows", "routes"})
    ->Args({16384, 64})
    ->Args({16384, 512})
    ->Args({65536, 64})
    ->Args({65536, 512});

// --- adversarial: every route distinct ---------------------------------------
//
// 512 underlying paths but no interned ids: the class fill sees 65536
// singleton classes. The delta between these two numbers is the pure cost
// of the class partition + scatter when it buys nothing.

void BM_RouteClassFillAllDistinct(benchmark::State& state) {
  Population p = make_population(static_cast<int>(state.range(0)),
                                 /*n_routes=*/512, /*interned=*/false);
  fill_loop(state, p, netsim::FillMode::kClass);
}
BENCHMARK(BM_RouteClassFillAllDistinct)
    ->ArgNames({"flows"})
    ->Args({65536});

void BM_RouteClassFillAllDistinctPerFlow(benchmark::State& state) {
  Population p = make_population(static_cast<int>(state.range(0)),
                                 /*n_routes=*/512, /*interned=*/false);
  fill_loop(state, p, netsim::FillMode::kPerFlow);
}
BENCHMARK(BM_RouteClassFillAllDistinctPerFlow)
    ->ArgNames({"flows"})
    ->Args({65536});

}  // namespace

int main(int argc, char** argv) {
  const bool not_release = echelon::benchutil::warn_if_not_release();
  benchmark::AddCustomContext("echelon_build_type",
                              echelon::benchutil::kBuildType);
  if (not_release) benchmark::AddCustomContext("echelon_unoptimized", "true");
  // Build provenance: which commit produced these numbers, and whether the
  // tree was dirty (bench_util.hpp).
  benchmark::AddCustomContext("echelon_git_commit",
                              echelon::benchutil::kGitCommit);
  benchmark::AddCustomContext("echelon_git_dirty",
                              echelon::benchutil::kGitDirty);
  benchmark::AddCustomContext(
      "echelon_hardware_concurrency",
      echelon::benchutil::hardware_concurrency_context());
  benchmark::AddCustomContext("echelon_pool_participants",
                              echelon::benchutil::pool_participants_context());
  benchmark::AddCustomContext("echelon_metrics",
                              echelon::benchutil::hotpath_metrics_context());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
