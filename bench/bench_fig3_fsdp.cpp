// FIG3: regenerates the paper's Fig. 3 -- the FSDP workflow -- and
// evaluates it under the three schedulers.
//
// Structure check: per iteration the workflow is
//   AG_1 .. AG_N (forward all-gathers) -> F_1 .. F_N
//   AG'_N .. AG'_1 (backward all-gathers) -> B_N .. B_1 -> RS_N .. RS_1
// with the all-gathers forming one EchelonFlow of staggered Coflows
// (Eq. 7) and each reduce-scatter a plain Coflow.
//
// Evaluation: steady-state iteration time, GPU idleness and Eq. 4 tardiness
// under fair sharing / Coflow-MADD / EchelonFlow-MADD. Expected shape: the
// staggered-Coflow treatment (EchelonFlow) meets each layer's compute
// deadline first, so it has the lowest idleness and iteration time;
// Coflow-MADD, which pulls all stages toward a common finish, delays early
// layers and inflates iteration time.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "workload/fsdp.hpp"

int main() {
  using namespace echelon;
  using namespace echelon::workload;

  std::cout << "=== FIG3: FSDP (ZeRO-3) workflow under the three schedulers "
               "===\n\n";

  const ModelSpec model = make_transformer(8, 2048, 256, 16);
  const GpuSpec gpu = a100();

  // Structure dump (one iteration, 4 ranks).
  {
    auto fabric = topology::make_big_switch(4, gbps(25));
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    const auto p = make_placement(sim, fabric.hosts);
    const auto job =
        generate_fsdp({.model = model, .gpu = gpu, .iterations = 1}, p, reg,
                      JobId{0});
    const auto& ag = reg.get(job.echelonflows[0]);
    std::cout << "all-gather EchelonFlow: " << ag.cardinality()
              << " flows in " << 2 * model.layer_count()
              << " staggered Coflow stages (" << ag.arrangement().describe()
              << ")\n"
              << "reduce-scatter Coflows: " << job.echelonflows.size() - 1
              << " (one per layer)\n\n";
    Table stages({"stage", "ideal finish offset (s)"});
    const int per_stage = 4 * 3;
    for (std::size_t s = 0; s < 2 * model.layer_count(); ++s) {
      const std::string name =
          s < model.layer_count()
              ? "AG_" + std::to_string(s + 1)
              : "AG'_" + std::to_string(2 * model.layer_count() - s);
      stages.add_row({name,
                      Table::num(ag.arrangement().offset(
                                     static_cast<int>(s) * per_stage),
                                 4)});
    }
    stages.print(std::cout);
    std::cout << "\n";
  }

  Table table({"scheduler", "steady iter (s)", "GPU idle", "sum tardiness"});
  for (const std::string which : {"fair", "coflow", "echelonflow"}) {
    const auto r = benchutil::run_single_job(
        which, 4, gbps(25),
        [&](netsim::Simulator&, const workload::Placement& p,
            ef::Registry& reg) {
          return generate_fsdp({.model = model, .gpu = gpu, .iterations = 3},
                               p, reg, JobId{0});
        });
    table.add_row({which, Table::num(r.steady_iteration(), 4),
                   Table::num(100.0 * r.mean_idle_fraction, 1) + "%",
                   Table::num(r.total_tardiness, 4)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: echelonflow <= fair < coflow on iteration "
               "time (staggered\nCoflows beat one merged Coflow).\n";
  return 0;
}
