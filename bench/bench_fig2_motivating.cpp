// FIG2: regenerates the paper's Fig. 2 motivating example.
//
// Pipeline-parallel forward phase, 2 workers, 3 micro-batches, 1 s compute
// per micro-batch on each worker, 2B-byte activations over a B-bandwidth
// link. Prints, per scheduling policy, the per-flow finish times, the
// computation finish time, and the per-interval rate allocation timeline
// (the shaded rate boxes of the figure).
//
// Paper values: fair sharing 8.5, Coflow 10, EchelonFlow 8 (optimal); the
// paper's text: "Coflow makes all flows finish simultaneously and is worse
// than naive bandwidth fair sharing."

#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "common/table.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "netsim/workflow.hpp"
#include "topology/builders.hpp"

namespace {

using namespace echelon;

constexpr int kMicroBatches = 3;

struct RateSample {
  SimTime at;
  std::vector<double> rates;  // per flow, B units
};

struct PanelResult {
  std::string name;
  SimTime comp_finish = 0.0;
  std::vector<SimTime> flow_finish;
  std::vector<RateSample> timeline;
  double tardiness = 0.0;
};

PanelResult run_panel(const std::string& which) {
  auto fabric = topology::make_big_switch(2, 1.0);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry registry;
  registry.attach(sim);

  std::unique_ptr<netsim::NetworkScheduler> sched;
  if (which == "coflow") {
    sched = std::make_unique<ef::CoflowMaddScheduler>();
  } else if (which == "echelonflow") {
    sched = std::make_unique<ef::EchelonMaddScheduler>(&registry);
  }
  if (sched) sim.set_scheduler(sched.get());

  const WorkerId w0 = sim.add_worker(fabric.hosts[0]);
  const WorkerId w1 = sim.add_worker(fabric.hosts[1]);
  const EchelonFlowId ef = registry.create(
      JobId{0}, ef::Arrangement::pipeline(kMicroBatches, 1.0), "fig2");

  netsim::Workflow wf;
  std::vector<netsim::WfNodeId> flows(kMicroBatches);
  std::vector<netsim::WfNodeId> consumer(kMicroBatches);
  netsim::WfNodeId prev_p = 0, prev_c = 0;
  for (int i = 0; i < kMicroBatches; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const auto p =
        wf.add_compute(w0, 1.0, "f.s0.mb" + std::to_string(i));
    flows[u] = wf.add_flow(netsim::FlowSpec{
        .src = fabric.hosts[0],
        .dst = fabric.hosts[1],
        .size = 2.0,
        .group = ef,
        .index_in_group = i,
        .label = "act" + std::to_string(i)});
    consumer[u] = wf.add_compute(w1, 1.0, "f.s1.mb" + std::to_string(i));
    wf.add_dep(p, flows[u]);
    wf.add_dep(flows[u], consumer[u]);
    if (i > 0) {
      wf.add_dep(prev_p, p);
      wf.add_dep(prev_c, consumer[u]);
    }
    prev_p = p;
    prev_c = consumer[u];
  }

  PanelResult r;
  r.name = which;

  // Sample rates after every arrival/departure via a probing timer chain.
  netsim::WorkflowEngine engine(&sim, &wf);
  auto sample = [&](netsim::Simulator& s) {
    RateSample smp;
    smp.at = s.now();
    for (int i = 0; i < kMicroBatches; ++i) {
      const FlowId fid = engine.flow_of(flows[static_cast<std::size_t>(i)]);
      smp.rates.push_back(
          fid.valid() && !s.flow(fid).finished() ? s.flow(fid).rate : 0.0);
    }
    r.timeline.push_back(smp);
  };
  for (double t = 1.0; t <= 8.0; t += 1.0) {
    sim.schedule_at(t + 1e-6, [&sample](netsim::Simulator& s) { sample(s); });
  }

  engine.launch(0.0);
  sim.run();
  r.comp_finish = engine.node_finish(consumer.back());
  for (int i = 0; i < kMicroBatches; ++i) {
    r.flow_finish.push_back(
        engine.node_finish(flows[static_cast<std::size_t>(i)]));
  }
  r.tardiness = registry.get(ef).tardiness();
  return r;
}

}  // namespace

int main() {
  std::cout << "=== FIG2: motivating example (2-worker PP forward, 3 "
               "micro-batches) ===\n"
            << "paper: fair 8.5 | coflow 10 (worse than fair!) | "
               "echelonflow 8 (optimal)\n\n";

  Table summary({"panel", "comp finish (paper)", "comp finish (measured)",
                 "flow finishes", "EchelonFlow tardiness"});
  const std::map<std::string, std::string> paper = {
      {"fair", "8.5"}, {"coflow", "10"}, {"echelonflow", "8"}};

  for (const std::string which : {"fair", "coflow", "echelonflow"}) {
    const PanelResult r = run_panel(which);
    std::string finishes;
    for (const SimTime t : r.flow_finish) {
      finishes += (finishes.empty() ? "" : ", ") + Table::num(t, 1);
    }
    summary.add_row({r.name, paper.at(which), Table::num(r.comp_finish, 1),
                     finishes, Table::num(r.tardiness, 1)});

    std::cout << "-- " << which << ": rate allocation just after t = 1..8 "
              << "(fractions of B)\n";
    Table rates({"t", "f1", "f2", "f3"});
    for (const RateSample& s : r.timeline) {
      rates.add_row({Table::num(s.at, 0), Table::num(s.rates[0], 3),
                     Table::num(s.rates[1], 3), Table::num(s.rates[2], 3)});
    }
    rates.print(std::cout);
    std::cout << "\n";
  }
  summary.print(std::cout);
  return 0;
}
