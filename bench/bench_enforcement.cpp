// EXT-E: enforcement gap of priority-queue scheduling (paper §5).
//
// The paper proposes enforcing coordinator decisions "through flow
// priorities": flows are binned into K priority queues and the backend does
// weighted sharing among the queues, instead of exact per-flow rates. This
// bench sweeps K and measures how much of EchelonFlow-MADD's benefit
// survives quantization, on the pipeline-parallel workload where scheduling
// matters most.
//
// Expected shape: K = 1 collapses to fair sharing; K >= 4 recovers most of
// the exact-rate benefit; the curve saturates quickly (a handful of
// priority queues -- what real NICs/switches offer -- suffices).

#include <iostream>
#include <memory>
#include <vector>

#include "cluster/sweep.hpp"
#include "common/table.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "runtime/priority_queue.hpp"
#include "topology/builders.hpp"
#include "workload/pp.hpp"

namespace {

using namespace echelon;

struct Outcome {
  double steady_iter = 0.0;
  double tardiness = 0.0;
};

Outcome run(int queues /* 0 = exact rates, -1 = fair sharing */) {
  auto fabric = topology::make_big_switch(4, gbps(10));
  netsim::Simulator sim(&fabric.topo);
  ef::Registry registry;
  registry.attach(sim);

  ef::EchelonMaddScheduler policy(&registry);
  std::unique_ptr<runtime::PriorityQueueEnforcer> pq;
  if (queues > 0) {
    pq = std::make_unique<runtime::PriorityQueueEnforcer>(
        &policy, runtime::PriorityQueueConfig{.num_queues = queues});
    sim.set_scheduler(pq.get());
  } else if (queues == 0) {
    sim.set_scheduler(&policy);
  }  // queues < 0: default fair sharing

  const auto placement = workload::make_placement(sim, fabric.hosts);
  const auto job = workload::generate_pipeline(
      {.model = workload::make_transformer(8, 4096, 512, 8),
       .gpu = workload::a100(),
       .micro_batches = 6,
       .iterations = 3},
      placement, registry, JobId{0});
  netsim::WorkflowEngine engine(&sim, &job.workflow);
  engine.launch(0.0);
  sim.run();

  Outcome o;
  o.steady_iter = engine.node_finish(job.iteration_end[2]) -
                  engine.node_finish(job.iteration_end[1]);
  o.tardiness = registry.total_tardiness();
  return o;
}

}  // namespace

int main() {
  std::cout << "=== EXT-E: priority-queue enforcement gap (PP job, "
               "EchelonFlow-MADD policy) ===\n\n";

  // This bench's per-point runner is bespoke (not run_experiment), so it
  // uses the sweep runner's generic deterministic parallel-for: each point
  // builds its own simulator, so points are independent.
  const std::vector<int> sweep = {-1, 1, 2, 4, 8, 16, 0};
  std::vector<Outcome> outcomes(sweep.size());
  cluster::parallel_for_indexed(sweep.size(), /*threads=*/0,
                                [&](std::size_t i) {
                                  outcomes[i] = run(sweep[i]);
                                });

  Table t({"enforcement", "steady iter (s)", "sum tardiness (s)"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const Outcome& o = outcomes[i];
    std::string name;
    if (sweep[i] < 0) {
      name = "fair sharing (no policy)";
    } else if (sweep[i] == 0) {
      name = "exact per-flow rates";
    } else {
      name = "K = " + std::to_string(sweep[i]) + " priority queues";
    }
    t.add_row({name, Table::num(o.steady_iter, 4), Table::num(o.tardiness, 4)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: K=1 == fair sharing; a few queues recover "
               "most of the\nexact-rate benefit.\n";
  return 0;
}
