// Thread-scaling microbenchmark of the parallel per-component water-fill
// (DESIGN.md §10, EXPERIMENTS.md EXT-P).
//
// Workload: `components` link-disjoint jobs (one src->dst host pair each,
// 32 capped flows per job -- the staggered-caps progressive-filling worst
// case from bench_allocator) under AllocMode::kFullRecompute, so EVERY
// pass water-fills EVERY component. The threads axis sweeps the same
// allocator + population through widths 1/2/4/8 of the shared ThreadPool;
// because the results are bit-identical by construction, the only thing
// that can move is time. `threads:1` with the pool attached-but-bypassed
// measures the dispatch-free serial path, i.e. the single-thread overhead
// of the validate->fill->merge restructure itself (budget: <= 1.05x the
// pre-restructure allocator; tracked as overhead_parallel_serial in
// BENCH_hotpath.json, with throughput_vs_threads carrying the scaling
// curve).
//
// Numbers are only meaningful relative to the machine shape: the JSON
// context records echelon_hardware_concurrency / echelon_pool_participants,
// and tools/check_bench_regression.py skips the thread-scaling gate when a
// fresh run's shape differs from the baseline's.
//
// Emit JSON for trajectory tracking with:
//   bench_parallel_alloc --benchmark_format=json

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "common/pool.hpp"
#include "common/units.hpp"
#include "netsim/allocator.hpp"
#include "netsim/flow.hpp"
#include "topology/builders.hpp"

namespace {

using namespace echelon;

struct Population {
  topology::BuiltFabric fabric;
  std::vector<netsim::Flow> flows;
  std::vector<netsim::Flow*> active;
};

// `n_jobs` independent components: job j's 32 flows all cross the dedicated
// host pair (2j, 2j+1), so the union-find partition yields exactly n_jobs
// singleton-pair components with zero shared links.
Population make_components(int n_jobs) {
  constexpr int kFlowsPerJob = 32;
  Population p{topology::make_big_switch(2 * n_jobs, gbps(100)), {}, {}};
  std::uint64_t id = 0;
  p.flows.reserve(static_cast<std::size_t>(n_jobs) * kFlowsPerJob);
  for (int j = 0; j < n_jobs; ++j) {
    for (int k = 0; k < kFlowsPerJob; ++k) {
      netsim::Flow f;
      f.id = FlowId{id};
      f.spec.size = 1e9;
      f.remaining = 1e9;
      f.weight = 1.0;
      // Staggered binding caps: each water-fill round freezes one flow, the
      // multi-round worst case, so per-component fill cost is substantial
      // enough for parallelism to matter.
      f.rate_cap = gbps(0.1 * (k + 1));
      f.path = *p.fabric.topo.route(p.fabric.hosts[2 * j],
                                    p.fabric.hosts[2 * j + 1], id);
      ++id;
      p.flows.push_back(std::move(f));
    }
  }
  for (auto& f : p.flows) p.active.push_back(&f);
  return p;
}

// args: {components, threads}. threads == 1 exercises the serial path with
// the parallel restructure in place (the overhead measurement); >= 2
// dispatches fills onto the shared pool.
void BM_ParallelAllocFill(benchmark::State& state) {
  Population p = make_components(static_cast<int>(state.range(0)));
  const auto threads = static_cast<unsigned>(state.range(1));
  netsim::RateAllocator alloc(&p.fabric.topo,
                              netsim::AllocMode::kFullRecompute);
  alloc.set_parallelism(&ThreadPool::shared(), threads);
  alloc.allocate(p.active);  // warm the arenas
  for (auto _ : state) {
    alloc.allocate(p.active);
    benchmark::DoNotOptimize(p.active);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.flows.size()));
  state.counters["components_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(state.range(0)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelAllocFill)
    ->ArgNames({"components", "threads"})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Args({64, 8})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

}  // namespace

int main(int argc, char** argv) {
  const bool not_release = echelon::benchutil::warn_if_not_release();
  benchmark::AddCustomContext("echelon_build_type",
                              echelon::benchutil::kBuildType);
  if (not_release) benchmark::AddCustomContext("echelon_unoptimized", "true");
  // Build provenance: which commit produced these numbers, and whether the
  // tree was dirty (bench_util.hpp).
  benchmark::AddCustomContext("echelon_git_commit",
                              echelon::benchutil::kGitCommit);
  benchmark::AddCustomContext("echelon_git_dirty",
                              echelon::benchutil::kGitDirty);
  // Machine shape: thread-scaling numbers are only comparable between
  // identically-shaped hosts (tools/check_bench_regression.py checks this).
  benchmark::AddCustomContext(
      "echelon_hardware_concurrency",
      echelon::benchutil::hardware_concurrency_context());
  benchmark::AddCustomContext("echelon_pool_participants",
                              echelon::benchutil::pool_participants_context());
  // Behavioural fingerprint of the hot path (allocator cache hit rate,
  // reallocation counts, ...) so BENCH_hotpath.json timing shifts can be
  // cross-read against scheduler behaviour (bench_util.hpp).
  benchmark::AddCustomContext("echelon_metrics",
                              echelon::benchutil::hotpath_metrics_context());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
