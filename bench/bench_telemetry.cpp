// EXT-T: service-plane telemetry benchmarks (DESIGN.md §15).
//
// All names carry the `tel:` argument tag so tools/check_bench_regression.py
// excludes them from the machine-speed calibration median (like `svc:` /
// `churn:` / `routes:`) while still gating them against the baseline. The
// checker additionally reads the `telemetry_overhead_ratio` counter exported
// by BM_TelemetryOverheadPair and fails if it exceeds the overhead
// tolerance -- the "telemetry costs <= 2%" acceptance gate, measured on one
// machine (no baseline or calibration involved).
//
//   1. BM_TelemetryOverheadPair/tel:2 -- the full online service pipeline
//      drained end to end with telemetry off then on *inside each
//      iteration*, so machine-speed drift between the two sides cancels.
//      Both sides produce bit-identical results (pinned by
//      tests/test_service_telemetry.cpp), so the wall-clock ratio is pure
//      telemetry cost (flusher + SLO tracker + flight recorder, no output
//      attachments), exported as `telemetry_overhead_ratio`.
//   2. BM_ServiceTelemetryOverhead/tel:{0,1} -- the two sides as separate
//      baseline-gated benchmarks (informational for the overhead gate).
//   3. BM_TelemetryFlushOnly/tel:J -- one registry refresh at a flush
//      boundary: the per-flush cost the flusher pays with no outputs.
//   4. BM_TelemetryFlushRender/tel:J -- rendering the Prometheus text
//      exposition from a drained J-job loop's telemetry registry: the
//      per-flush serialization cost an attached PromWriter pays.
//   5. BM_FlightRecord/tel:C -- steady-state cost of one structured event
//      through a capacity-C ring (the per-decision overhead every admit/
//      launch/complete pays while the recorder is live).

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "cluster/trace.hpp"
#include "obs/flightrec.hpp"
#include "service/arrivals.hpp"
#include "service/service.hpp"
#include "service/slo.hpp"

namespace {

using namespace echelon;

cluster::TraceConfig telemetry_trace(int jobs) {
  cluster::TraceConfig tc;
  tc.num_jobs = jobs;
  tc.arrival_rate = 8.0;
  tc.seed = 4321;
  tc.iterations = 1;
  tc.min_layers = 4;
  tc.max_layers = 6;
  tc.min_width = 512;
  tc.max_width = 1024;
  tc.rank_choices = {2, 4};
  return tc;
}

service::TelemetryConfig full_telemetry() {
  service::TelemetryConfig tel;
  tel.metrics_every = 0.1;  // the CLI default when a prom target is given
  tel.series_budget = 64;
  tel.flightrec_capacity = 256;
  tel.slo.window = 1.0;
  tel.slo.objectives = {
      service::SloObjective{service::SloKind::kJct, 0.5, 0.1},
      service::SloObjective{service::SloKind::kQueueWait, 0.05, 0.2},
      service::SloObjective{service::SloKind::kTardiness, 0.2, 0.05},
  };
  return tel;
}

std::unique_ptr<service::ServiceLoop> make_loop(int jobs, bool telemetry) {
  service::ServiceConfig cfg;
  cfg.hosts = 16;
  cfg.control_period = 0.02;
  cfg.admission.policy = service::AdmissionPolicy::kQueueWithCap;
  cfg.admission.max_running = 8;
  cfg.admission.queue_cap = static_cast<std::uint64_t>(jobs);
  if (telemetry) cfg.telemetry = full_telemetry();
  auto loop = std::make_unique<service::ServiceLoop>(cfg);
  loop->set_generator(std::make_unique<service::PoissonArrivalGenerator>(
      telemetry_trace(jobs)));
  return loop;
}

// The overhead gate: same 32-job stream drained twice per iteration,
// telemetry off then fully on, timed side by side with a monotonic clock so
// load drift hits both sides equally. tools/check_bench_regression.py reads
// the exported ratio and fails above --overhead-tolerance.
void BM_TelemetryOverheadPair(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  std::chrono::nanoseconds off_ns{0};
  std::chrono::nanoseconds on_ns{0};
  for (auto _ : state) {
    const auto t0 = clock::now();
    {
      auto off = make_loop(32, /*telemetry=*/false);
      benchmark::DoNotOptimize(off->drain());
    }
    const auto t1 = clock::now();
    {
      auto on = make_loop(32, /*telemetry=*/true);
      benchmark::DoNotOptimize(on->drain());
    }
    const auto t2 = clock::now();
    off_ns += t1 - t0;
    on_ns += t2 - t1;
  }
  state.counters["telemetry_overhead_ratio"] =
      off_ns.count() == 0
          ? 0.0
          : static_cast<double>(on_ns.count()) /
                static_cast<double>(off_ns.count());
}

BENCHMARK(BM_TelemetryOverheadPair)
    ->ArgNames({"tel"})
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// The two sides as separate baseline-gated trajectories (the pair above is
// the overhead gate; these pin the absolute costs against BENCH_hotpath).
void BM_ServiceTelemetryOverhead(benchmark::State& state) {
  const bool telemetry = state.range(0) != 0;
  std::uint64_t flushes = 0;
  for (auto _ : state) {
    auto loop = make_loop(32, telemetry);
    benchmark::DoNotOptimize(loop->drain());
    flushes += loop->telemetry_flushes();
  }
  state.counters["flushes"] = static_cast<double>(flushes) /
                              static_cast<double>(state.iterations());
}

BENCHMARK(BM_ServiceTelemetryOverhead)
    ->ArgNames({"tel"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Pure flush cost: one registry refresh (counters, gauges, per-link series
// samples, flight marker) at a fixed sim time, no output attachments.
void BM_TelemetryFlushOnly(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  auto loop = make_loop(jobs, /*telemetry=*/true);
  loop->drain();
  for (auto _ : state) {
    loop->flush_now();
  }
  state.counters["flushes"] = static_cast<double>(loop->telemetry_flushes());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(BM_TelemetryFlushOnly)
    ->ArgNames({"tel"})
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_TelemetryFlushRender(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  auto loop = make_loop(jobs, /*telemetry=*/true);
  loop->drain();
  std::string text;
  for (auto _ : state) {
    text = loop->prom_exposition();
    benchmark::DoNotOptimize(text.data());
  }
  state.counters["exposition_bytes"] = static_cast<double>(text.size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

BENCHMARK(BM_TelemetryFlushRender)
    ->ArgNames({"tel"})
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_FlightRecord(benchmark::State& state) {
  obs::FlightRecorder rec(static_cast<std::size_t>(state.range(0)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    rec.record(obs::FlightKind::kLaunch, 0.001 * static_cast<double>(i), i,
               i + 1);
    ++i;
  }
  benchmark::DoNotOptimize(rec.ring_digest());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(BM_FlightRecord)
    ->ArgNames({"tel"})
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kNanosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool not_release = echelon::benchutil::warn_if_not_release();
  benchmark::AddCustomContext("echelon_build_type",
                              echelon::benchutil::kBuildType);
  if (not_release) benchmark::AddCustomContext("echelon_unoptimized", "true");
  benchmark::AddCustomContext("echelon_git_commit",
                              echelon::benchutil::kGitCommit);
  benchmark::AddCustomContext("echelon_git_dirty",
                              echelon::benchutil::kGitDirty);
  benchmark::AddCustomContext(
      "echelon_hardware_concurrency",
      echelon::benchutil::hardware_concurrency_context());
  benchmark::AddCustomContext("echelon_pool_participants",
                              echelon::benchutil::pool_participants_context());
  benchmark::AddCustomContext("echelon_metrics",
                              echelon::benchutil::hotpath_metrics_context());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
