// Event-loop hot-path microbenchmarks (DESIGN.md "Event-loop fast path").
//
// BM_SimLoop measures the steady-state cost of one event iteration in a
// timer-heavy workload with a large population of active flows -- the regime
// the lazy-accounting rewrite targets. 64 self-rescheduling timers fire
// every 100us of simulated time while `range(0)` long-lived flows hold
// rates; no flow completes and the allocation never goes dirty, so the loop
// runs pure event iterations:
//   * kEagerScan (the seed-shaped reference): O(active) completion scan per
//     event,
//   * kLazy (production): O(log n) heap read per event.
// items_processed counts fired timer events, so `items_per_second` is the
// event-loop throughput.
//
// BM_Sweep measures cluster::run_sweep throughput on a scheduler-comparison
// grid, serial vs one thread per core (on a single-core container the two
// coincide -- the win shows on real multi-core hosts; determinism is what
// the test suite asserts).

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "cluster/sweep.hpp"
#include "cluster/trace.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

namespace {

using namespace echelon;
using netsim::SimLoopMode;
using netsim::Simulator;

constexpr int kTickers = 64;
constexpr double kTickInterval = 1e-4;

struct Ticker {
  // Self-rescheduling timer; the callback captures a single pointer, so the
  // steady-state reschedule is allocation-free.
  std::uint64_t fired = 0;
  void fire(Simulator& s) {
    ++fired;
    Ticker* self = this;
    s.schedule_after(kTickInterval, [self](Simulator& s2) { self->fire(s2); });
  }
};

struct LoopBench {
  topology::BuiltFabric fabric;
  Simulator sim;
  std::vector<Ticker> tickers;
  double t = 0.0;

  LoopBench(int flows, SimLoopMode mode)
      : fabric(topology::make_big_switch(16, gbps(100))), sim(&fabric.topo, mode) {
    for (int i = 0; i < flows; ++i) {
      netsim::FlowSpec spec;
      spec.src = fabric.hosts[static_cast<std::size_t>(i) % 16];
      spec.dst = fabric.hosts[static_cast<std::size_t>(i + 1) % 16];
      spec.size = 1e18;  // never completes within the benchmark horizon
      sim.submit_flow(std::move(spec));
    }
    tickers.resize(kTickers);
    for (int k = 0; k < kTickers; ++k) {
      Ticker* tp = &tickers[static_cast<std::size_t>(k)];
      sim.schedule_at(k * kTickInterval / kTickers,
                      [tp](Simulator& s) { tp->fire(s); });
    }
    // Warm-up: rates assigned, pools and heaps at their high-water marks.
    t = 10 * kTickInterval;
    sim.run(t);
  }

  [[nodiscard]] std::uint64_t fired() const {
    std::uint64_t n = 0;
    for (const Ticker& tk : tickers) n += tk.fired;
    return n;
  }
};

void run_sim_loop(benchmark::State& state, SimLoopMode mode) {
  LoopBench b(static_cast<int>(state.range(0)), mode);
  const std::uint64_t fired_before = b.fired();
  // ~640 timer events per benchmark iteration.
  const double slice = kTickInterval / kTickers * 640.0;
  for (auto _ : state) {
    b.t += slice;
    benchmark::DoNotOptimize(b.sim.run(b.t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(b.fired() - fired_before));
}

void BM_SimLoopLazy(benchmark::State& state) {
  run_sim_loop(state, SimLoopMode::kLazy);
}
void BM_SimLoopEagerScan(benchmark::State& state) {
  run_sim_loop(state, SimLoopMode::kEagerScan);
}

BENCHMARK(BM_SimLoopLazy)->RangeMultiplier(4)->Range(64, 8192);
BENCHMARK(BM_SimLoopEagerScan)->RangeMultiplier(4)->Range(64, 8192);

// --- sweep throughput --------------------------------------------------------

std::vector<cluster::SweepPoint> sweep_grid() {
  cluster::TraceConfig tcfg;
  tcfg.num_jobs = 6;
  tcfg.seed = 77;
  tcfg.arrival_rate = 3.0;
  tcfg.iterations = 2;
  tcfg.rank_choices = {2, 4};
  const auto jobs = cluster::generate_trace(tcfg);

  std::vector<cluster::SweepPoint> points;
  for (const auto kind :
       {cluster::SchedulerKind::kFairSharing, cluster::SchedulerKind::kSrpt,
        cluster::SchedulerKind::kCoflowMadd,
        cluster::SchedulerKind::kEchelonMadd}) {
    for (const int hosts : {16, 32}) {
      cluster::ExperimentConfig cfg;
      cfg.scheduler = kind;
      cfg.hosts = hosts;
      cfg.port_capacity = gbps(25);
      points.push_back({jobs, cfg});
    }
  }
  return points;
}

void run_sweep_bench(benchmark::State& state, unsigned threads) {
  const auto points = sweep_grid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::run_sweep(points, {.threads = threads}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points.size()));
}

void BM_SweepSerial(benchmark::State& state) { run_sweep_bench(state, 1); }
void BM_SweepParallel(benchmark::State& state) { run_sweep_bench(state, 0); }

BENCHMARK(BM_SweepSerial);
BENCHMARK(BM_SweepParallel);

}  // namespace

int main(int argc, char** argv) {
  const bool not_release = echelon::benchutil::warn_if_not_release();
  benchmark::AddCustomContext("echelon_build_type",
                              echelon::benchutil::kBuildType);
  if (not_release) benchmark::AddCustomContext("echelon_unoptimized", "true");
  // Build provenance: which commit produced these numbers, and whether the
  // tree was dirty (bench_util.hpp).
  benchmark::AddCustomContext("echelon_git_commit",
                              echelon::benchutil::kGitCommit);
  benchmark::AddCustomContext("echelon_git_dirty",
                              echelon::benchutil::kGitDirty);
  // Machine shape: thread-scaling numbers are only comparable between
  // identically-shaped hosts (tools/check_bench_regression.py checks this).
  benchmark::AddCustomContext(
      "echelon_hardware_concurrency",
      echelon::benchutil::hardware_concurrency_context());
  benchmark::AddCustomContext("echelon_pool_participants",
                              echelon::benchutil::pool_participants_context());
  // Behavioural fingerprint of the hot path (allocator cache hit rate,
  // reallocation counts, ...) so BENCH_hotpath.json timing shifts can be
  // cross-read against scheduler behaviour (bench_util.hpp).
  benchmark::AddCustomContext("echelon_metrics",
                              echelon::benchutil::hotpath_metrics_context());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
