// EXT-N: scheduling under deterministic fault injection (DESIGN.md §8).
//
// The paper motivates EchelonFlow with training jobs that share "a highly
// dynamic network" (§1) and with recalibration after members fall behind
// (Fig. 6). This bench replays seeded FaultPlans -- link outages, brownouts,
// compute stragglers, whole-node failures -- against a multi-job trace on
// the oversubscribed leaf-spine fabric (two spines, so a severed uplink has
// an alternate path and the injector's reroute logic is exercised, not just
// park/retry) and reports how each scheduler degrades.
//
// Repro: see EXPERIMENTS.md EXT-N; the CLI equivalent is
//   echelonflow_cli cluster --chaos N --chaos-seed S [--fault-plan FILE]

#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/experiment.hpp"
#include "cluster/trace.hpp"
#include "common/table.hpp"
#include "faultsim/fault_plan.hpp"
#include "topology/builders.hpp"

namespace {

using namespace echelon;

struct Scenario {
  std::string name;
  faultsim::ChaosProfile profile;  // counts all zero => fault-free baseline
  faultsim::FaultPlan scripted;    // non-empty => used instead of the profile
};

}  // namespace

int main() {
  benchutil::warn_if_not_release();

  cluster::TraceConfig tcfg;
  tcfg.num_jobs = 8;
  tcfg.seed = 42;
  tcfg.iterations = 2;
  tcfg.arrival_rate = 3.0;
  const auto jobs = cluster::generate_trace(tcfg);

  const int hosts = 16;
  const BytesPerSec port = gbps(25);
  const double oversub = 2.0;

  // Fabric replica used only for chaos target selection -- must match the
  // shape run_experiment builds for FabricKind::kLeafSpine.
  const auto fabric = topology::make_leaf_spine(
      {.leaves = 2, .spines = 2, .hosts_per_leaf = 8, .host_link = port,
       .uplink = 8 * port / (2 * oversub)});
  std::size_t workers = 0;
  for (const auto& j : jobs) workers += static_cast<std::size_t>(j.ranks);

  const SimTime horizon = 1.5;
  std::vector<Scenario> scenarios;
  scenarios.push_back({"fault-free", {}});
  {
    faultsim::ChaosProfile p;
    p.seed = 7;
    p.horizon = horizon;
    p.brownouts = 6;
    scenarios.push_back({"brownouts", p});
  }
  {
    faultsim::ChaosProfile p;
    p.seed = 7;
    p.horizon = horizon;
    p.link_faults = 6;
    scenarios.push_back({"link outages", p});
  }
  {
    faultsim::ChaosProfile p;
    p.seed = 7;
    p.horizon = horizon;
    p.node_faults = 2;
    p.stragglers = 4;
    scenarios.push_back({"nodes+stragglers", p});
  }
  {
    faultsim::ChaosProfile p;
    p.seed = 7;
    p.horizon = horizon;
    p.link_faults = 4;
    p.brownouts = 4;
    p.stragglers = 4;
    p.node_faults = 1;
    scenarios.push_back({"mixed chaos", p});
  }
  {
    // Scripted uplink flaps: alternately sever one spine's leaf->spine
    // direction while the other spine stays up, all run long. Any cross-leaf
    // flow caught mid-flight has an alternate path through the surviving
    // spine, so it must *reroute* rather than park. Link ids follow
    // make_leaf_spine order: leaf0-spine0 = 0/1, leaf0-spine1 = 2/3,
    // leaf1-spine0 = 20/21, leaf1-spine1 = 22/23.
    Scenario sc;
    sc.name = "uplink flaps";
    using faultsim::FaultKind;
    auto& ev = sc.scripted.events;
    for (int k = 0; 0.1 + 0.3 * k < 3.5; ++k) {
      const SimTime t = 0.1 + 0.3 * k;
      // Spine 1 out for [t, t+0.15), then spine 0 for [t+0.15, t+0.3).
      // Recoveries are scheduled before the next outage at the same instant
      // (plan order is preserved), so one spine is always reachable.
      ev.push_back({t, FaultKind::kLinkDown, 2, 1.0});
      ev.push_back({t, FaultKind::kLinkDown, 22, 1.0});
      ev.push_back({t + 0.15, FaultKind::kLinkUp, 2, 1.0});
      ev.push_back({t + 0.15, FaultKind::kLinkUp, 22, 1.0});
      ev.push_back({t + 0.15, FaultKind::kLinkDown, 0, 1.0});
      ev.push_back({t + 0.15, FaultKind::kLinkDown, 20, 1.0});
      ev.push_back({t + 0.3, FaultKind::kLinkUp, 0, 1.0});
      ev.push_back({t + 0.3, FaultKind::kLinkUp, 20, 1.0});
    }
    scenarios.push_back(std::move(sc));
  }

  const std::vector<cluster::SchedulerKind> kinds = {
      cluster::SchedulerKind::kFairSharing,
      cluster::SchedulerKind::kCoflowMadd,
      cluster::SchedulerKind::kEchelonMadd,
  };

  Table t({"scenario", "scheduler", "mean iter (s)", "tardiness (s)",
           "reroutes", "parks", "abandoned", "downtime (s)"});
  for (const Scenario& sc : scenarios) {
    const faultsim::FaultPlan plan =
        sc.scripted.empty()
            ? faultsim::from_chaos(sc.profile, fabric.topo, workers,
                                   jobs.size())
            : sc.scripted;
    for (const auto kind : kinds) {
      cluster::ExperimentConfig cfg;
      cfg.scheduler = kind;
      cfg.fabric = cluster::FabricKind::kLeafSpine;
      cfg.hosts = hosts;
      cfg.port_capacity = port;
      cfg.oversubscription = oversub;
      if (!plan.empty()) cfg.fault_plan = &plan;
      const auto r = cluster::run_experiment(jobs, cfg);
      t.add_row({sc.name, std::string(cluster::to_string(kind)),
                 Table::num(r.iteration_samples().mean(), 4),
                 Table::num(r.total_tardiness, 3),
                 std::to_string(r.flow_reroutes),
                 std::to_string(r.flow_parks),
                 std::to_string(r.flows_abandoned),
                 Table::num(r.flow_downtime, 4)});
    }
  }
  t.print(std::cout);
  std::cout << "\nfault plans are seeded and deterministic: the same seed "
               "reproduces every row bit-for-bit.\n";
  return 0;
}
