// TAB1: regenerates the paper's Table 1.
//
// For each mainstream DDLT paradigm, generates the training workflow,
// inspects the EchelonFlow declarations it produces, and derives
// programmatically (a) whether the paradigm is Coflow-compliant (all ideal
// finish times equal in every EchelonFlow) and (b) the EchelonFlow
// arrangement class. Paper's rows:
//
//   DP - AllReduce  | compliant     | Same flow finish time
//   DP - PS         | compliant     | Same flow finish time
//   PP              | non-compliant | Staggered flow finish time
//   TP              | compliant     | Same flow finish time
//   FSDP            | non-compliant | Staggered Coflow finish time

#include <iostream>

#include "common/table.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/dp.hpp"
#include "workload/ep.hpp"
#include "workload/fsdp.hpp"
#include "workload/pp.hpp"
#include "workload/tp.hpp"

int main() {
  using namespace echelon;
  using namespace echelon::workload;

  std::cout << "=== TAB1: paradigm compliance matrix (derived from generated "
               "workflows) ===\n\n";
  Table table({"Training paradigm", "CoFlow compliance",
               "EchelonFlow arrangement", "#EchelonFlows/iter", "#flows/iter"});

  const ModelSpec model = make_mlp(4, 256, 8);
  const GpuSpec gpu = a100();

  auto analyze = [&table](const std::string& name, const GeneratedJob& job,
                          const ef::Registry& reg) {
    bool all_compliant = true;
    std::string arrangement = "same flow finish time";
    std::size_t flows = 0;
    for (const EchelonFlowId id : job.echelonflows) {
      const auto& a = reg.get(id).arrangement();
      flows += static_cast<std::size_t>(a.size());
      if (!a.is_coflow_compliant()) {
        all_compliant = false;
        arrangement = a.describe();
      }
    }
    table.add_row({name, all_compliant ? "yes" : "no", arrangement,
                   std::to_string(job.echelonflows.size()),
                   std::to_string(flows)});
  };

  {
    auto fabric = topology::make_big_switch(4, gbps(100));
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    const auto p = make_placement(sim, fabric.hosts);
    analyze("DP - AllReduce",
            generate_dp_allreduce(
                {.model = model, .gpu = gpu, .buckets = 4, .iterations = 1},
                p, reg, JobId{0}),
            reg);
  }
  {
    auto fabric = topology::make_big_switch(5, gbps(100));
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    std::vector<NodeId> hosts(fabric.hosts.begin(), fabric.hosts.end() - 1);
    const auto p = make_placement(sim, hosts);
    const WorkerId ps = sim.add_worker(fabric.hosts.back());
    analyze("DP - PS",
            generate_dp_ps(
                {.model = model, .gpu = gpu, .buckets = 4, .iterations = 1},
                p, fabric.hosts.back(), ps, reg, JobId{0}),
            reg);
  }
  {
    auto fabric = topology::make_big_switch(4, gbps(100));
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    const auto p = make_placement(sim, fabric.hosts);
    analyze("PP",
            generate_pipeline({.model = model,
                               .gpu = gpu,
                               .micro_batches = 4,
                               .iterations = 1},
                              p, reg, JobId{0}),
            reg);
  }
  {
    auto fabric = topology::make_big_switch(4, gbps(100));
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    const auto p = make_placement(sim, fabric.hosts);
    analyze("TP",
            generate_tensor({.model = model, .gpu = gpu, .iterations = 1}, p,
                            reg, JobId{0}),
            reg);
  }
  {
    auto fabric = topology::make_big_switch(4, gbps(100));
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    const auto p = make_placement(sim, fabric.hosts);
    analyze("FSDP",
            generate_fsdp({.model = model, .gpu = gpu, .iterations = 1}, p,
                          reg, JobId{0}),
            reg);
  }

  {
    // Extension row: a post-paper paradigm (MoE expert parallelism) slots
    // into the abstraction unchanged -- the paper's extensibility claim.
    auto fabric = topology::make_big_switch(4, gbps(100));
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    const auto p = make_placement(sim, fabric.hosts);
    analyze("EP-MoE (extension)",
            generate_expert({.model = model, .gpu = gpu, .iterations = 1}, p,
                            reg, JobId{0}),
            reg);
  }

  table.print(std::cout);
  std::cout << "\npaper Table 1: DP-AllReduce yes/same, DP-PS yes/same, "
               "PP no/staggered flow,\nTP yes/same, FSDP no/staggered "
               "Coflow. EP-MoE is this repo's extension row.\n";
  return 0;
}
