// EXT-I: robustness to bandwidth variability.
//
// The paper's scheduler must share the network with "competing training
// jobs" over "a shared, highly dynamic network" (§1). This bench injects
// periodic brownouts -- every port drops to a fraction of its capacity for
// a fixed window, then recovers -- into a pipeline-parallel run and
// measures how each scheduler's iteration time and tardiness degrade.
//
// Expected shape: EchelonFlow's reference-time recalibration (Fig. 6) gives
// delayed members catch-up bandwidth after each brownout, so its relative
// degradation stays at or below the baselines'.

#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/pp.hpp"

namespace {

using namespace echelon;

struct Outcome {
  double makespan = 0.0;
  double tardiness = 0.0;
};

Outcome run(const std::string& which, double brownout_fraction,
            Duration period, Duration width) {
  auto fabric = topology::make_big_switch(4, gbps(10));
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  std::unique_ptr<netsim::NetworkScheduler> sched;
  if (which == "coflow") {
    sched = std::make_unique<ef::CoflowMaddScheduler>();
  } else if (which == "echelonflow") {
    sched = std::make_unique<ef::EchelonMaddScheduler>(&reg);
  }
  if (sched) sim.set_scheduler(sched.get());

  // Periodic brownouts on every port.
  if (brownout_fraction < 1.0) {
    for (int k = 0; k < 64; ++k) {
      const SimTime down = k * period;
      const SimTime up = down + width;
      sim.schedule_at(down, [&fabric, brownout_fraction](netsim::Simulator& s) {
        for (std::size_t l = 0; l < fabric.topo.link_count(); ++l) {
          fabric.topo.set_link_capacity(LinkId{l},
                                        gbps(10) * brownout_fraction);
        }
        s.invalidate_allocation();
      });
      sim.schedule_at(up, [&fabric](netsim::Simulator& s) {
        for (std::size_t l = 0; l < fabric.topo.link_count(); ++l) {
          fabric.topo.set_link_capacity(LinkId{l}, gbps(10));
        }
        s.invalidate_allocation();
      });
    }
  }

  const auto placement = workload::make_placement(sim, fabric.hosts);
  const auto job = workload::generate_pipeline(
      {.model = workload::make_transformer(8, 4096, 512, 8),
       .gpu = workload::a100(),
       .micro_batches = 6,
       .iterations = 3},
      placement, reg, JobId{0});
  netsim::WorkflowEngine engine(&sim, &job.workflow);
  engine.launch(0.0);
  sim.run();  // drains the job and the remaining brownout timers
  Outcome o;
  // Job completion, not quiesce time (brownout timers outlive the job).
  o.makespan = engine.node_finish(job.iteration_end.back());
  o.tardiness = reg.total_tardiness();
  return o;
}

}  // namespace

int main() {
  std::cout << "=== EXT-I: brownout robustness (PP job; every port drops to "
               "X% for 50 ms each 250 ms) ===\n\n";
  Table t({"scheduler", "clean makespan (s)", "brownout 50% (s)",
           "brownout 10% (s)", "tardiness clean", "tardiness 10%"});
  for (const std::string which : {"fair", "coflow", "echelonflow"}) {
    const Outcome clean = run(which, 1.0, 0.25, 0.05);
    const Outcome half = run(which, 0.5, 0.25, 0.05);
    const Outcome tenth = run(which, 0.1, 0.25, 0.05);
    t.add_row({which, Table::num(clean.makespan, 4),
               Table::num(half.makespan, 4), Table::num(tenth.makespan, 4),
               Table::num(clean.tardiness, 4),
               Table::num(tenth.tardiness, 4)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: everyone slows under brownouts; "
               "echelonflow keeps the lowest\nmakespan and tardiness at "
               "every severity (catch-up after recovery).\n";
  return 0;
}
