// EXT-G: arrangement-function ablation on reordered pipelines (1F1B).
//
// The paper (§4 Case II) notes that PP variants which reorder computation
// (PipeDream-style 1F1B) still form EchelonFlows, "albeit more complicated
// than Eq. 6". This bench compares, on a 1F1B pipeline:
//   * analytic arrangement: Eq. 6 with steady-state distance T = t_f + t_b,
//   * profiled arrangement: per-flow offsets measured on an infinitely fast
//     network (the paper's profiling story, §3.1/§5),
// plus GPipe-vs-1F1B under the EchelonFlow scheduler (the bubble shrinks).

#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/pp.hpp"
#include "workload/profiler.hpp"

namespace {

using namespace echelon;
using namespace echelon::workload;

struct Outcome {
  double steady_iter = 0.0;
  double idle = 0.0;
  double tardiness = 0.0;
};

Outcome run(PipelineSchedule schedule, bool calibrate) {
  auto fabric = topology::make_big_switch(4, gbps(10));
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  ef::EchelonMaddScheduler sched(&reg);
  sim.set_scheduler(&sched);

  const auto placement = make_placement(sim, fabric.hosts);
  const auto job = generate_pipeline(
      {.model = make_transformer(8, 4096, 512, 8),
       .gpu = a100(),
       .micro_batches = 6,
       .iterations = 3,
       .schedule = schedule},
      placement, reg, JobId{0});

  if (calibrate) {
    const auto prof = profile_job(job, fabric.topo, placement.hosts);
    calibrate_registry(job, prof, reg);
  }

  netsim::WorkflowEngine engine(&sim, &job.workflow);
  engine.launch(0.0);
  sim.run();

  Outcome o;
  o.steady_iter = engine.node_finish(job.iteration_end[2]) -
                  engine.node_finish(job.iteration_end[1]);
  double idle = 0.0;
  for (const WorkerId w : placement.workers) {
    idle += sim.worker(w).idle_fraction();
  }
  o.idle = idle / static_cast<double>(placement.workers.size());
  o.tardiness = reg.total_tardiness();
  return o;
}

}  // namespace

int main() {
  std::cout << "=== EXT-G: 1F1B arrangement ablation (analytic Eq. 6 vs "
               "profiled offsets) ===\n\n";
  Table t({"schedule", "arrangement", "steady iter (s)", "GPU idle",
           "sum tardiness (s)"});
  {
    const Outcome o = run(PipelineSchedule::kGpipe, false);
    t.add_row({"GPipe", "analytic Eq. 6", Table::num(o.steady_iter, 4),
               Table::num(100.0 * o.idle, 1) + "%",
               Table::num(o.tardiness, 4)});
  }
  {
    const Outcome o = run(PipelineSchedule::kOneFOneB, false);
    t.add_row({"1F1B", "analytic (T = t_f + t_b)",
               Table::num(o.steady_iter, 4),
               Table::num(100.0 * o.idle, 1) + "%",
               Table::num(o.tardiness, 4)});
  }
  {
    const Outcome o = run(PipelineSchedule::kOneFOneB, true);
    t.add_row({"1F1B", "profiled offsets", Table::num(o.steady_iter, 4),
               Table::num(100.0 * o.idle, 1) + "%",
               Table::num(o.tardiness, 4)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: on a *fast* network 1F1B idles less than "
               "GPipe (verified in\ntests/test_workload.cpp at infinite "
               "bandwidth); in this deliberately\ncomm-bound setting 1F1B's "
               "tighter F/B interleaving puts gradient flows on\nthe "
               "critical path of every forward slot and it loses -- a real "
               "crossover\nflow scheduling must handle. Profiled offsets "
               "must do no worse than the\nsteady-state analytic guess.\n";
  return 0;
}
