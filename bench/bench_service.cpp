// EXT-S: online-service-mode benchmarks (DESIGN.md §13).
//
// Three families, all carrying the `svc:` argument tag so
// tools/check_bench_regression.py excludes them from the machine-speed
// calibration median (like `threads:` / `routes:` / `churn:`) while still
// gating them against the baseline:
//
//   1. BM_ServiceSteadyState/svc:J -- the whole online pipeline end to end:
//      J Poisson arrivals streamed through admission (queue-with-cap),
//      incremental placement/launch, periodic control ticks, completion
//      backfill. The decisions/sec counter is the headline service-mode
//      throughput number.
//   2. BM_ServiceSnapshotSave/svc:J -- serializing a drained J-job loop
//      (journal + generator + verification image). bytes_per_second tracks
//      snapshot cost against state size; the `snapshot_bytes` counter pins
//      the size itself.
//   3. BM_ServiceSnapshotRestore/svc:J -- the full restore path: header +
//      checksum validation, stack rebuild, journal replay through the step
//      loop, bitwise verification. Replay dominates; this bounds service
//      recovery time.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_util.hpp"
#include "cluster/trace.hpp"
#include "service/arrivals.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"

namespace {

using namespace echelon;

cluster::TraceConfig service_trace(int jobs) {
  cluster::TraceConfig tc;
  tc.num_jobs = jobs;
  tc.arrival_rate = 8.0;
  tc.seed = 1234;
  tc.iterations = 1;
  tc.min_layers = 4;
  tc.max_layers = 6;
  tc.min_width = 512;
  tc.max_width = 1024;
  tc.rank_choices = {2, 4};
  return tc;
}

std::unique_ptr<service::ServiceLoop> make_loop(int jobs) {
  service::ServiceConfig cfg;
  cfg.hosts = 16;
  cfg.control_period = 0.02;
  cfg.admission.policy = service::AdmissionPolicy::kQueueWithCap;
  cfg.admission.max_running = 8;
  cfg.admission.queue_cap = static_cast<std::uint64_t>(jobs);
  auto loop = std::make_unique<service::ServiceLoop>(cfg);
  loop->set_generator(std::make_unique<service::PoissonArrivalGenerator>(
      service_trace(jobs)));
  return loop;
}

void BM_ServiceSteadyState(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  std::uint64_t decisions = 0;
  double end = 0.0;
  for (auto _ : state) {
    auto loop = make_loop(jobs);
    end = loop->drain();
    decisions += loop->journal().size();
  }
  state.counters["decisions_per_sec"] = benchmark::Counter(
      static_cast<double>(decisions), benchmark::Counter::kIsRate);
  state.counters["sim_end_s"] = end;
}

BENCHMARK(BM_ServiceSteadyState)
    ->ArgNames({"svc"})
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// A drained loop at its terminal step boundary: maximal journal, per-flow
// verification image, and generator progress -- the worst case both
// directions of the snapshot pay for.
void BM_ServiceSnapshotSave(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  auto loop = make_loop(jobs);
  while (loop->step()) {
  }
  std::string bytes;
  for (auto _ : state) {
    bytes = service::save_snapshot(*loop);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.counters["snapshot_bytes"] =
      static_cast<double>(bytes.size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}

BENCHMARK(BM_ServiceSnapshotSave)
    ->ArgNames({"svc"})
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_ServiceSnapshotRestore(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  auto loop = make_loop(jobs);
  while (loop->step()) {
  }
  const std::string bytes = service::save_snapshot(*loop);
  for (auto _ : state) {
    auto restored = service::restore_snapshot(bytes);
    benchmark::DoNotOptimize(restored.get());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}

BENCHMARK(BM_ServiceSnapshotRestore)
    ->ArgNames({"svc"})
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool not_release = echelon::benchutil::warn_if_not_release();
  benchmark::AddCustomContext("echelon_build_type",
                              echelon::benchutil::kBuildType);
  if (not_release) benchmark::AddCustomContext("echelon_unoptimized", "true");
  benchmark::AddCustomContext("echelon_git_commit",
                              echelon::benchutil::kGitCommit);
  benchmark::AddCustomContext("echelon_git_dirty",
                              echelon::benchutil::kGitDirty);
  benchmark::AddCustomContext(
      "echelon_hardware_concurrency",
      echelon::benchutil::hardware_concurrency_context());
  benchmark::AddCustomContext("echelon_pool_participants",
                              echelon::benchutil::pool_participants_context());
  benchmark::AddCustomContext("echelon_metrics",
                              echelon::benchutil::hotpath_metrics_context());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
