// FIG6: regenerates the paper's Fig. 6 -- the arrangement-function intuition
// and the reference-time recalibration.
//
// Two consecutive EchelonFlows H = {f0, f1, f2} and H' = {f0', f1', f2'}
// between the same pipeline-parallel worker pair. The flows of H' start
// late (their producing computations were stalled by H's delayed flows);
// Fig. 6b shows their ideal finish times d'_1, d'_2 set *earlier than their
// start times* -- derived from the reference time r' rather than from when
// the flows appear -- giving them the opportunity to catch up. The bench
// prints starts vs ideal finishes for both EchelonFlows and shows the
// negative slack.

#include <iostream>

#include "common/table.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

int main() {
  using namespace echelon;

  auto fabric = topology::make_big_switch(2, 1.0);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry registry;
  registry.attach(sim);
  ef::EchelonMaddScheduler sched(&registry);
  sim.set_scheduler(&sched);

  constexpr Duration kT = 1.0;  // per-micro-batch compute ("distance")
  const EchelonFlowId h =
      registry.create(JobId{0}, ef::Arrangement::pipeline(3, kT), "H");
  const EchelonFlowId h2 =
      registry.create(JobId{0}, ef::Arrangement::pipeline(3, kT), "H'");

  auto post = [&](EchelonFlowId ef, int index, SimTime at, Bytes size) {
    sim.schedule_at(at, [&, ef, index, size](netsim::Simulator& s) {
      s.submit_flow(netsim::FlowSpec{.src = fabric.hosts[0],
                                     .dst = fabric.hosts[1],
                                     .size = size,
                                     .group = ef,
                                     .index_in_group = index});
    });
  };

  // H: the regular echelon -- releases at 1, 2, 3 (size 2B each => delays).
  post(h, 0, 1.0, 2.0);
  post(h, 1, 2.0, 2.0);
  post(h, 2, 3.0, 2.0);
  // H': the next iteration's echelon. Because H's flows were delayed, the
  // computations producing f1', f2' slipped: releases at 8, 10.5, 12
  // (instead of the clean 8, 9, 10).
  post(h2, 0, 8.0, 2.0);
  post(h2, 1, 10.5, 1.0);
  post(h2, 2, 12.0, 1.0);
  sim.run();

  std::cout << "=== FIG6: reference time and ideal finish times across two "
               "EchelonFlows ===\n\n";
  for (const EchelonFlowId id : {h, h2}) {
    const ef::EchelonFlow& e = registry.get(id);
    std::cout << "EchelonFlow " << e.label()
              << "  (reference time r = " << *e.reference_time() << ")\n";
    Table t({"flow", "start s_j", "ideal finish d_j", "d_j - s_j",
             "actual finish", "tardiness"});
    for (const ef::MemberFlow& m : e.members()) {
      const double d = *e.ideal_finish(m.index);
      t.add_row({"f" + std::to_string(m.index) + (id == h2 ? "'" : ""),
                 Table::num(m.start_time, 2), Table::num(d, 2),
                 Table::num(d - m.start_time, 2),
                 Table::num(m.finish_time, 2),
                 Table::num(*e.flow_tardiness(m.index), 2)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "note the negative d_j - s_j on f1', f2': their ideal finish "
               "times are\nadvanced ahead of their own start times (paper "
               "§3.1), so the scheduler\ngrants them full catch-up bandwidth "
               "and the echelon re-forms.\n";
  return 0;
}
