// FIG4: regenerates the paper's Fig. 4 -- data-parallel workflows with both
// gradient-exchange architectures (ring all-reduce and parameter server).
//
// Per iteration: forward, backward per bucket (reverse layer order), and a
// gradient synchronization per bucket that overlaps the remaining backward
// computation. Each bucket's flows form a Coflow-compliant EchelonFlow
// (§4 Case I), so for a single DP job Coflow-MADD and EchelonFlow-MADD
// should behave near-identically -- the point of this bench -- while both
// beat fair sharing slightly by pacing buckets that barrier later.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "workload/dp.hpp"

int main() {
  using namespace echelon;
  using namespace echelon::workload;

  std::cout << "=== FIG4: Data Parallelism (AllReduce and PS) ===\n\n";

  const ModelSpec model = make_transformer(8, 2048, 256, 16);
  const GpuSpec gpu = a100();

  std::cout << "-- DP-AllReduce (ring), 4 ranks, 4 gradient buckets --\n";
  Table ar({"scheduler", "steady iter (s)", "GPU idle", "sum tardiness"});
  for (const std::string which : {"fair", "coflow", "echelonflow"}) {
    const auto r = benchutil::run_single_job(
        which, 4, gbps(25),
        [&](netsim::Simulator&, const workload::Placement& p,
            ef::Registry& reg) {
          return generate_dp_allreduce(
              {.model = model, .gpu = gpu, .buckets = 4, .iterations = 3}, p,
              reg, JobId{0});
        });
    ar.add_row({which, Table::num(r.steady_iteration(), 4),
                Table::num(100.0 * r.mean_idle_fraction, 1) + "%",
                Table::num(r.total_tardiness, 4)});
  }
  ar.print(std::cout);

  std::cout << "\n-- DP-PS, 4 workers + 1 PS, 4 gradient buckets --\n";
  Table ps({"scheduler", "steady iter (s)", "GPU idle", "sum tardiness"});
  for (const std::string which : {"fair", "coflow", "echelonflow"}) {
    // PS placement: 4 worker hosts + PS on the 5th.
    auto fabric = topology::make_big_switch(5, gbps(25));
    netsim::Simulator sim(&fabric.topo);
    ef::Registry registry;
    registry.attach(sim);
    std::unique_ptr<netsim::NetworkScheduler> sched;
    if (which == "coflow") {
      sched = std::make_unique<ef::CoflowMaddScheduler>();
    } else if (which == "echelonflow") {
      sched = std::make_unique<ef::EchelonMaddScheduler>(&registry);
    }
    if (sched) sim.set_scheduler(sched.get());
    std::vector<NodeId> worker_hosts(fabric.hosts.begin(),
                                     fabric.hosts.end() - 1);
    const auto placement = make_placement(sim, worker_hosts);
    const WorkerId psw = sim.add_worker(fabric.hosts.back(), "ps");
    const auto job = generate_dp_ps(
        {.model = model, .gpu = gpu, .buckets = 4, .iterations = 3},
        placement, fabric.hosts.back(), psw, registry, JobId{0});
    netsim::WorkflowEngine engine(&sim, &job.workflow);
    engine.launch(0.0);
    sim.run();
    const SimTime steady =
        engine.node_finish(job.iteration_end[2]) -
        engine.node_finish(job.iteration_end[1]);
    double idle = 0.0;
    for (const WorkerId w : placement.workers) {
      idle += sim.worker(w).idle_fraction();
    }
    ps.add_row({which, Table::num(steady, 4),
                Table::num(100.0 * idle / 4.0, 1) + "%",
                Table::num(registry.total_tardiness(), 4)});
  }
  ps.print(std::cout);
  std::cout << "\nexpected shape: coflow == echelonflow (DP is "
               "Coflow-compliant, Table 1);\nboth >= fair only marginally, "
               "since a lone DP job has little cross-bucket contention.\n";
  return 0;
}
