// FIG5: regenerates the paper's Fig. 5 -- the Megatron-style tensor-parallel
// workflow -- and evaluates it under the three schedulers.
//
// Per layer: sharded forward compute on all ranks, then an activation
// all-reduce (AS) that barriers the next layer; the backward pass mirrors
// this with gradient all-reduces (GS). Every all-reduce's flows form a
// Coflow (§4 Case I), so like DP this paradigm is Coflow-compliant and the
// bench's expected shape is echelonflow == coflow.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "workload/tp.hpp"

int main() {
  using namespace echelon;
  using namespace echelon::workload;

  std::cout << "=== FIG5: Tensor Parallelism (Megatron) ===\n\n";

  const ModelSpec model = make_transformer(6, 2048, 256, 16);
  const GpuSpec gpu = a100();

  // Structure: 2 all-reduces per layer per iteration (AS fwd + GS bwd).
  {
    auto fabric = topology::make_big_switch(4, gbps(25));
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    const auto p = make_placement(sim, fabric.hosts);
    const auto job = generate_tensor(
        {.model = model, .gpu = gpu, .iterations = 1}, p, reg, JobId{0});
    std::cout << "EchelonFlows per iteration: " << job.echelonflows.size()
              << " (= 2 x " << model.layer_count()
              << " layers), every one Coflow-compliant\n\n";
  }

  Table table({"scheduler", "steady iter (s)", "GPU idle", "sum tardiness"});
  for (const std::string which : {"fair", "coflow", "echelonflow"}) {
    const auto r = benchutil::run_single_job(
        which, 4, gbps(25),
        [&](netsim::Simulator&, const workload::Placement& p,
            ef::Registry& reg) {
          return generate_tensor(
              {.model = model, .gpu = gpu, .iterations = 3}, p, reg,
              JobId{0});
        });
    table.add_row({which, Table::num(r.steady_iteration(), 4),
                   Table::num(100.0 * r.mean_idle_fraction, 1) + "%",
                   Table::num(r.total_tardiness, 4)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: all three near-equal for a lone TP job "
               "(each all-reduce\nbarriers the next layer, so there is no "
               "cross-collective slack to exploit);\nechelonflow == coflow "
               "by Property 2.\n";
  return 0;
}
