// EXT-H: topology sensitivity.
//
// The same mixed-paradigm trace on (a) the non-blocking big switch and
// (b) a leaf-spine fabric at oversubscription 1:1, 2:1 and 4:1, under the
// four schedulers (incl. the per-flow SRPT baseline). Oversubscription
// moves contention from host ports into the core, where flows of different
// jobs collide on uplinks -- the regime where cross-job coordination (the
// paper's whole point, §1) matters most.

#include <iostream>

#include "cluster/sweep.hpp"
#include "cluster/trace.hpp"
#include "common/table.hpp"

int main() {
  using namespace echelon;

  cluster::TraceConfig tcfg;
  tcfg.num_jobs = 10;
  tcfg.seed = 1234;
  tcfg.arrival_rate = 4.0;
  tcfg.iterations = 2;
  tcfg.min_width = 2048;
  tcfg.max_width = 4096;
  tcfg.batch = 64;
  tcfg.rank_choices = {4, 8};
  const auto jobs = cluster::generate_trace(tcfg);

  std::cout << "=== EXT-H: topology sensitivity (" << jobs.size()
            << " jobs, 16 hosts) ===\n\n";

  struct Fabric {
    std::string name;
    cluster::FabricKind kind;
    double oversub;
  };
  const std::vector<Fabric> fabrics = {
      {"big switch", cluster::FabricKind::kBigSwitch, 1.0},
      {"leaf-spine 1:1", cluster::FabricKind::kLeafSpine, 1.0},
      {"leaf-spine 2:1", cluster::FabricKind::kLeafSpine, 2.0},
      {"leaf-spine 4:1", cluster::FabricKind::kLeafSpine, 4.0},
  };

  const std::vector<cluster::SchedulerKind> kinds = {
      cluster::SchedulerKind::kFairSharing, cluster::SchedulerKind::kSrpt,
      cluster::SchedulerKind::kCoflowMadd,
      cluster::SchedulerKind::kEchelonMadd};

  // (fabric x scheduler) grid through the parallel sweep runner; results
  // come back in point order, so the tables print as the serial loop did.
  std::vector<cluster::SweepPoint> points;
  points.reserve(fabrics.size() * kinds.size());
  for (const Fabric& fabric : fabrics) {
    for (const auto kind : kinds) {
      cluster::ExperimentConfig cfg;
      cfg.scheduler = kind;
      cfg.fabric = fabric.kind;
      cfg.oversubscription = fabric.oversub;
      cfg.hosts = 16;
      cfg.port_capacity = gbps(25);
      points.push_back({jobs, cfg});
    }
  }
  const auto results = cluster::run_sweep(points);

  std::size_t p = 0;
  for (const Fabric& fabric : fabrics) {
    std::cout << "-- " << fabric.name << " --\n";
    Table t({"scheduler", "mean iter (s)", "p99 iter (s)",
             "sum tardiness (s)", "makespan (s)"});
    for (const auto kind : kinds) {
      const auto& r = results[p++];
      const auto iters = r.iteration_samples();
      t.add_row({std::string(cluster::to_string(kind)),
                 Table::num(iters.mean(), 4), Table::num(iters.p99(), 4),
                 Table::num(r.total_tardiness, 3),
                 Table::num(r.makespan, 3)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "expected shape: scheduler gaps grow with oversubscription "
               "(more core\ncontention to arbitrate); echelonflow-madd "
               "lowest tardiness everywhere;\nsrpt decent on mean but "
               "application-blind, so it starves late echelon members.\n";
  return 0;
}
