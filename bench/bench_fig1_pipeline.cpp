// FIG1: regenerates the paper's Fig. 1a -- the GPipe computation timeline.
//
// Four pipeline stages, four micro-batches, uniform compute, infinitely
// fast network (the figure omits communications). Prints the per-worker
// ASCII schedule (forward i, backward i, idle) and compares the measured
// bubble (idle) fraction against the analytic GPipe bound (p-1)/(m+p-1).
// Also prints the Fig. 1b view: the forward p2p transfers between two
// consecutive workers and their staggered release times -- the EchelonFlow.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/pp.hpp"
#include "workload/profiler.hpp"

int main() {
  using namespace echelon;
  using namespace echelon::workload;

  constexpr int kStages = 4;
  constexpr int kMicroBatches = 4;

  auto fabric = topology::make_big_switch(kStages, 1e30);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const ModelSpec model = make_mlp(kStages, 256, 8);  // one layer per stage
  // Normalize the GPU so one forward micro-batch slot is exactly 1 s.
  const GpuSpec gpu{.name = "slot",
                    .peak_flops = model.layers[0].fwd_flops,
                    .efficiency = 1.0};
  const auto job = generate_pipeline({.model = model,
                                      .gpu = gpu,
                                      .micro_batches = kMicroBatches,
                                      .iterations = 1,
                                      .optimizer_fraction = 0.0},
                                     placement, reg, JobId{0});

  // Profile the run to recover every task's start/finish.
  const ProfileResult prof = profile_job(job, fabric.topo, placement.hosts);

  const double T = gpu.compute_time(model.layers[0].fwd_flops);
  const double unit = T;  // one forward slot
  const auto slots = static_cast<std::size_t>(prof.makespan / unit + 0.5);

  std::cout << "=== FIG1a: GPipe computation timeline (" << kStages
            << " workers x " << kMicroBatches
            << " micro-batches; Fi=forward, bi=backward half-slot) ===\n\n";
  for (int s = 0; s < kStages; ++s) {
    // Build a per-slot label map from recorded task times. Backward tasks
    // are 2 slots long in this model (bwd = 2x fwd FLOPs).
    std::vector<std::string> row(slots, "..");
    for (const auto& [label, times] : prof.tasks) {
      const bool fwd = label.rfind("it0.f.s" + std::to_string(s), 0) == 0;
      const bool bwd = label.rfind("it0.b.s" + std::to_string(s), 0) == 0;
      if (!fwd && !bwd) continue;
      const std::string mb = label.substr(label.find(".mb") + 3);
      const auto first = static_cast<std::size_t>(times.start / unit + 0.25);
      const auto last = static_cast<std::size_t>(times.finish / unit - 0.25);
      for (std::size_t k = first; k <= last && k < slots; ++k) {
        row[k] = (fwd ? "F" : "b") + mb;
      }
    }
    std::cout << "worker " << s + 1 << " | ";
    for (const std::string& cell : row) std::cout << cell << ' ';
    std::cout << "|\n";
  }

  // Bubble fraction: idle share of each worker over the iteration.
  double busy = 0.0;
  for (const auto& [label, times] : prof.tasks) {
    (void)label;
    busy += times.finish - times.start;
  }
  const double bubble =
      1.0 - busy / (static_cast<double>(kStages) * prof.makespan);
  const double analytic = gpipe_bubble_fraction(kStages, kMicroBatches);
  std::cout << "\nmeasured bubble fraction: " << Table::num(bubble, 4)
            << "   analytic (p-1)/(m+p-1): " << Table::num(analytic, 4)
            << "\n\n";

  std::cout << "=== FIG1b: forward p2p transfers worker1 -> worker2 (the "
               "EchelonFlow) ===\n\n";
  Table t({"micro-batch", "release (s)", "ideal finish offset (Eq. 6)"});
  const EchelonFlowId fwd_ef = job.echelonflows[0];
  const auto& offsets = prof.offsets.at(fwd_ef.value());
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    t.add_row({std::to_string(i + 1), Table::num(offsets[i] + T, 3),
               Table::num(reg.get(fwd_ef).arrangement().offset(
                              static_cast<int>(i)),
                          3)});
  }
  t.print(std::cout);
  std::cout << "\nconsecutive releases are T = " << Table::num(T, 3)
            << " s apart: the staggered pattern EchelonFlow preserves.\n";
  return 0;
}
