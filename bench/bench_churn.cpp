// EXT-R: streaming-churn control-plane benchmark (DESIGN.md §12).
//
// Two families:
//   1. BM_ChurnControlPass{Incremental,Full}/jobs:J/churn:D -- one scheduler
//      control() pass over J link-disjoint 8-member EchelonFlows of which D
//      carry dirty marks. The incremental-vs-full ratio at churn:1 is the
//      headline number of the incremental control plane: under streaming
//      churn almost every pass is 1-dirty-of-many, and the dirty-job-scoped
//      pass touches only the affected component instead of re-ranking and
//      re-filling the whole population. churn:J (everything dirty) bounds
//      the scoped pass's bookkeeping overhead from above.
//   2. BM_ChurnStreaming{Incremental,Full}/churn:S -- the whole streaming
//      pipeline end to end: run_experiment on the dense-arrival churn trace
//      (EXPERIMENTS.md EXT-R) under EchelonFlow-MADD, with S as the external
//      setter-churn seed (0 = membership churn only). Both modes produce
//      bit-identical results (tests/test_churn_equivalence.cpp); this
//      measures what the equivalence buys.
//
// The `churn:` argument family is excluded from the calibration median of
// tools/check_bench_regression.py (like `threads:` / `routes:`): a better
// incremental tier legitimately moves these numbers by integer factors,
// which must not skew the machine-speed calibration for everything else.

#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "cluster/experiment.hpp"
#include "cluster/trace.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

namespace {

using namespace echelon;

// --- part 1: one control pass under partial dirtiness -----------------------

constexpr int kMembers = 8;

// J link-disjoint pipeline EchelonFlows with one JobId each: J independent
// scheduling components, so a D-dirty pass has exactly D components to
// recompute. Flows are foreign (ids outside the simulator's table) and
// address-stable, driven through the scheduler hooks exactly as the
// Simulator would.
struct ChurnPopulation {
  topology::BuiltFabric fabric;
  netsim::Simulator sim;
  ef::Registry reg;
  std::vector<netsim::Flow> flows;
  std::vector<netsim::Flow*> active;

  explicit ChurnPopulation(int jobs)
      : fabric(topology::make_big_switch(jobs * (kMembers + 1), gbps(100))),
        sim(&fabric.topo) {
    flows.reserve(static_cast<std::size_t>(jobs) * kMembers);
    for (int j = 0; j < jobs; ++j) {
      const EchelonFlowId efid =
          reg.create(JobId{static_cast<std::uint64_t>(j)},
                     ef::Arrangement::pipeline(kMembers, 0.01));
      for (int m = 0; m < kMembers; ++m) {
        netsim::Flow f;
        f.id = FlowId{static_cast<std::uint64_t>(flows.size())};
        f.spec.job = JobId{static_cast<std::uint64_t>(j)};
        f.spec.group = efid;
        f.spec.index_in_group = m;
        f.spec.size = 1e8 + 1e6 * static_cast<double>(j * kMembers + m);
        f.remaining = f.spec.size;
        const auto src =
            fabric.hosts[static_cast<std::size_t>(j * (kMembers + 1) + m)];
        const auto dst =
            fabric.hosts[static_cast<std::size_t>(j * (kMembers + 1) + m + 1)];
        f.path = *fabric.topo.route(src, dst, flows.size());
        reg.get(efid).note_start(m, f.id, f.spec.size,
                                 0.001 * static_cast<double>(m));
        flows.push_back(std::move(f));
      }
    }
    for (netsim::Flow& f : flows) active.push_back(&f);
  }
};

void churn_control_pass(benchmark::State& state, netsim::SchedMode mode) {
  const int jobs = static_cast<int>(state.range(0));
  const int dirty = static_cast<int>(state.range(1));
  ChurnPopulation pop(jobs);
  ef::EchelonMaddScheduler sched(&pop.reg);
  sched.set_sched_mode(mode);
  for (netsim::Flow& f : pop.flows) sched.on_flow_arrival(pop.sim, f);
  sched.mark_all_jobs_dirty();
  sched.control(pop.sim, pop.active);  // warm-up: enter the steady era

  // Rotating dirty window: each pass marks the next D jobs, so over time
  // every component gets recomputed (no unrealistically-hot cache slice).
  int next = 0;
  for (auto _ : state) {
    for (int k = 0; k < dirty; ++k) {
      sched.mark_job_dirty(JobId{static_cast<std::uint64_t>((next + k) % jobs)});
    }
    next = (next + dirty) % jobs;
    sched.control(pop.sim, pop.active);
    benchmark::DoNotOptimize(pop.active);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pop.flows.size()));
}

void BM_ChurnControlPassIncremental(benchmark::State& state) {
  churn_control_pass(state, netsim::SchedMode::kIncremental);
}
void BM_ChurnControlPassFull(benchmark::State& state) {
  churn_control_pass(state, netsim::SchedMode::kFullRecompute);
}
BENCHMARK(BM_ChurnControlPassIncremental)
    ->ArgNames({"jobs", "churn"})
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({64, 16})
    ->Args({64, 64});
BENCHMARK(BM_ChurnControlPassFull)
    ->ArgNames({"jobs", "churn"})
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({64, 16})
    ->Args({64, 64});

// --- part 2: end-to-end streaming run ----------------------------------------

std::vector<cluster::JobSpec> streaming_trace() {
  cluster::TraceConfig tcfg;
  tcfg.num_jobs = 10;
  tcfg.seed = 42;
  tcfg.arrival_rate = 8.0;  // dense overlap: several jobs in flight at once
  tcfg.iterations = 2;
  tcfg.min_width = 512;
  tcfg.max_width = 1024;
  tcfg.rank_choices = {2, 3, 4};
  return cluster::generate_trace(tcfg);
}

void churn_streaming(benchmark::State& state, netsim::SchedMode mode) {
  const auto jobs = streaming_trace();
  cluster::ExperimentConfig cfg;
  cfg.scheduler = cluster::SchedulerKind::kEchelonMadd;
  cfg.sched_mode = mode;
  cfg.churn_seed = static_cast<std::uint64_t>(state.range(0));
  std::int64_t control_invocations = 0;
  for (auto _ : state) {
    const auto r = cluster::run_experiment(jobs, cfg);
    benchmark::DoNotOptimize(&r);
    control_invocations += static_cast<std::int64_t>(r.control_invocations);
  }
  state.SetItemsProcessed(control_invocations);
}

void BM_ChurnStreamingIncremental(benchmark::State& state) {
  churn_streaming(state, netsim::SchedMode::kIncremental);
}
void BM_ChurnStreamingFull(benchmark::State& state) {
  churn_streaming(state, netsim::SchedMode::kFullRecompute);
}
BENCHMARK(BM_ChurnStreamingIncremental)
    ->ArgNames({"churn"})
    ->Arg(0)
    ->Arg(42)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChurnStreamingFull)
    ->ArgNames({"churn"})
    ->Arg(0)
    ->Arg(42)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Non-Release numbers must never be mistaken for baselines: warn on
  // stderr and tag the (machine-readable) context so BENCH_hotpath.json
  // regeneration scripts can reject them.
  const bool not_release = echelon::benchutil::warn_if_not_release();
  benchmark::AddCustomContext("echelon_build_type",
                              echelon::benchutil::kBuildType);
  if (not_release) benchmark::AddCustomContext("echelon_unoptimized", "true");
  // Build provenance: which commit produced these numbers, and whether the
  // tree was dirty (bench_util.hpp).
  benchmark::AddCustomContext("echelon_git_commit",
                              echelon::benchutil::kGitCommit);
  benchmark::AddCustomContext("echelon_git_dirty",
                              echelon::benchutil::kGitDirty);
  benchmark::AddCustomContext(
      "echelon_hardware_concurrency",
      echelon::benchutil::hardware_concurrency_context());
  benchmark::AddCustomContext("echelon_pool_participants",
                              echelon::benchutil::pool_participants_context());
  benchmark::AddCustomContext("echelon_metrics",
                              echelon::benchutil::hotpath_metrics_context());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
