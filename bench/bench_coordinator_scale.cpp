// EXT-C: coordinator scalability (paper §5).
//
// Two parts:
//   1. google-benchmark microbenchmarks of one scheduler control() pass as
//      the active-flow population grows -- the latency every arrival or
//      departure pays under per-event scheduling.
//   2. a table comparing per-event vs interval vs interval+iterative-reuse
//      coordination on a multi-iteration DP job: heuristic runs, reuse
//      hits, and the tardiness cost of scheduling lag. This quantifies the
//      paper's proposal to "maintain the scheduling decision throughout the
//      DDLT lifetime leveraging the iterative nature of DDLT jobs".

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "runtime/coordinator.hpp"
#include "topology/builders.hpp"
#include "workload/dp.hpp"

namespace {

using namespace echelon;

// --- part 1: control-pass latency -------------------------------------------

void BM_EchelonMaddControlPass(benchmark::State& state) {
  const int n_flows = static_cast<int>(state.range(0));
  const int hosts = 32;
  auto fabric = topology::make_big_switch(hosts, gbps(100));
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  ef::EchelonMaddScheduler sched(&reg);

  // Population: n_flows across n_flows/8 EchelonFlows of 8 members each.
  Rng rng(5);
  std::vector<netsim::Flow> flows;
  flows.reserve(static_cast<std::size_t>(n_flows));
  const int per_ef = 8;
  for (int i = 0; i < n_flows; ++i) {
    if (i % per_ef == 0) {
      reg.create(JobId{0}, ef::Arrangement::pipeline(per_ef, 0.01));
    }
    const auto src = rng.uniform_int(static_cast<std::uint64_t>(hosts));
    auto dst = rng.uniform_int(static_cast<std::uint64_t>(hosts));
    if (dst == src) dst = (dst + 1) % static_cast<std::uint64_t>(hosts);
    netsim::Flow f;
    f.id = FlowId{static_cast<std::uint64_t>(i)};
    f.spec.group = EchelonFlowId{static_cast<std::uint64_t>(i / per_ef)};
    f.spec.index_in_group = i % per_ef;
    f.spec.size = rng.uniform(1e6, 1e8);
    f.remaining = f.spec.size;
    f.path = *fabric.topo.route(fabric.hosts[src], fabric.hosts[dst],
                                static_cast<std::uint64_t>(i));
    reg.get(f.spec.group)
        .note_start(f.spec.index_in_group, f.id, f.spec.size,
                    0.001 * static_cast<double>(i % per_ef));
    flows.push_back(std::move(f));
  }
  std::vector<netsim::Flow*> active;
  for (auto& f : flows) active.push_back(&f);

  for (auto _ : state) {
    sched.control(sim, active);
    benchmark::DoNotOptimize(active);
  }
  state.SetItemsProcessed(state.iterations() * n_flows);
}
BENCHMARK(BM_EchelonMaddControlPass)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

// --- part 2: coordination-mode comparison -----------------------------------

void coordination_mode_table() {
  std::cout << "\n=== EXT-C(2): coordination modes on a 6-iteration DP job "
               "===\n\n";
  Table t({"mode", "heuristic runs", "reuse hits", "deferred flows",
           "makespan (s)", "sum tardiness (s)"});

  struct Mode {
    std::string name;
    runtime::CoordinatorConfig cfg;
  };
  const std::vector<Mode> modes = {
      {"per-event", {}},
      {"interval 5ms",
       {.mode = runtime::SchedulingMode::kInterval, .interval = 5e-3}},
      {"interval 5ms + reuse",
       {.mode = runtime::SchedulingMode::kInterval,
        .interval = 5e-3,
        .iterative_reuse = true}},
  };
  for (const Mode& mode : modes) {
    auto fabric = topology::make_big_switch(4, gbps(25));
    netsim::Simulator sim(&fabric.topo);
    runtime::Coordinator coord(&sim, mode.cfg);
    sim.set_scheduler(&coord);
    const auto placement = workload::make_placement(sim, fabric.hosts);
    const auto job = workload::generate_dp_allreduce(
        {.model = workload::make_transformer(6, 2048, 256, 16),
         .gpu = workload::a100(),
         .buckets = 4,
         .iterations = 6},
        placement, coord.registry(), JobId{0});
    netsim::WorkflowEngine engine(&sim, &job.workflow);
    engine.launch(0.0);
    const SimTime makespan = sim.run();
    t.add_row({mode.name, std::to_string(coord.heuristic_runs()),
               std::to_string(coord.reuse_hits()),
               std::to_string(coord.deferred_flows()),
               Table::num(makespan, 4),
               Table::num(coord.registry().total_tardiness(), 4)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: interval scheduling slashes heuristic runs "
               "at some tardiness\ncost; iterative reuse recovers most of "
               "the loss by serving repeat signatures\nfrom cache instead of "
               "parking them.\n";
}

}  // namespace

int main(int argc, char** argv) {
  // When machine-readable output is requested (trajectory tracking, e.g.
  // BENCH_hotpath.json), emit only the google-benchmark report: the
  // coordination table would corrupt the JSON stream.
  bool machine_readable = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--benchmark_format", 0) == 0 && arg != "--benchmark_format=console") {
      machine_readable = true;
    }
  }
  // Non-Release numbers must never be mistaken for baselines: warn on
  // stderr and tag the (machine-readable) context so BENCH_hotpath.json
  // regeneration scripts can reject them.
  const bool not_release = echelon::benchutil::warn_if_not_release();
  benchmark::AddCustomContext("echelon_build_type",
                              echelon::benchutil::kBuildType);
  if (not_release) benchmark::AddCustomContext("echelon_unoptimized", "true");
  // Build provenance: which commit produced these numbers, and whether the
  // tree was dirty (bench_util.hpp).
  benchmark::AddCustomContext("echelon_git_commit",
                              echelon::benchutil::kGitCommit);
  benchmark::AddCustomContext("echelon_git_dirty",
                              echelon::benchutil::kGitDirty);
  // Machine shape: thread-scaling numbers are only comparable between
  // identically-shaped hosts (tools/check_bench_regression.py checks this).
  benchmark::AddCustomContext(
      "echelon_hardware_concurrency",
      echelon::benchutil::hardware_concurrency_context());
  benchmark::AddCustomContext("echelon_pool_participants",
                              echelon::benchutil::pool_participants_context());
  // Behavioural fingerprint of the hot path (allocator cache hit rate,
  // reallocation counts, ...) so BENCH_hotpath.json timing shifts can be
  // cross-read against scheduler behaviour (bench_util.hpp).
  benchmark::AddCustomContext("echelon_metrics",
                              echelon::benchutil::hotpath_metrics_context());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!machine_readable) coordination_mode_table();
  return 0;
}
