// Example: Fully-Sharded Data Parallelism (ZeRO-3) under EchelonFlow.
//
// Demonstrates the paper's §4 Case III: the per-layer all-gathers of one
// iteration form a single EchelonFlow whose *stages* (Coflows) carry
// staggered ideal finish times (Eq. 7). The example prints each stage's
// ideal vs. actual finish under the EchelonFlow scheduler, showing the
// echelon formation in action, and contrasts the iteration time with the
// Coflow treatment that lumps every all-gather together.
//
// Run: ./fsdp_training

#include <algorithm>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/fsdp.hpp"

int main() {
  using namespace echelon;
  constexpr int kRanks = 4;

  auto run = [&](bool use_echelon, bool print_stages) {
    auto fabric = topology::make_big_switch(kRanks, gbps(25));
    netsim::Simulator sim(&fabric.topo);
    ef::Registry registry;
    registry.attach(sim);
    std::unique_ptr<netsim::NetworkScheduler> sched;
    if (use_echelon) {
      sched = std::make_unique<ef::EchelonMaddScheduler>(&registry);
    } else {
      sched = std::make_unique<ef::CoflowMaddScheduler>();
    }
    sim.set_scheduler(sched.get());

    const auto placement = workload::make_placement(sim, fabric.hosts);
    const auto job = workload::generate_fsdp(
        {.model = workload::make_transformer(6, 2048, 256, 16),
         .gpu = workload::a100(),
         .iterations = 1},
        placement, registry, JobId{0});

    netsim::WorkflowEngine engine(&sim, &job.workflow);
    engine.launch(0.0);
    const SimTime makespan = sim.run();

    if (print_stages) {
      // The first EchelonFlow is the all-gather echelon; report per-stage
      // (per-Coflow) ideal vs actual finish.
      const ef::EchelonFlow& ag = registry.get(job.echelonflows[0]);
      const int per_stage = kRanks * (kRanks - 1);
      Table t({"stage", "ideal finish (s)", "actual finish (s)",
               "tardiness (s)"});
      const int stages = ag.cardinality() / per_stage;
      for (int s = 0; s < stages; ++s) {
        SimTime actual = 0.0;
        for (int j = s * per_stage; j < (s + 1) * per_stage; ++j) {
          actual = std::max(actual, ag.members()[static_cast<std::size_t>(j)]
                                        .finish_time);
        }
        const SimTime ideal = *ag.ideal_finish(s * per_stage);
        const std::string name =
            s < stages / 2 ? "AG_" + std::to_string(s)
                           : "AG'_" + std::to_string(stages - 1 - s);
        t.add_row({name, Table::num(ideal, 4), Table::num(actual, 4),
                   Table::num(actual - ideal, 4)});
      }
      t.print(std::cout);
    }
    return makespan;
  };

  std::cout << "Per-stage all-gather echelon under EchelonFlow-MADD:\n";
  const SimTime echelon = run(true, true);
  const SimTime coflow = run(false, false);
  std::cout << "\niteration time: echelonflow = " << echelon
            << " s, coflow = " << coflow << " s ("
            << Table::num(100.0 * (coflow - echelon) / coflow, 1)
            << "% saved)\n";
  return 0;
}
