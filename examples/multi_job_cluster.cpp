// Example: a multi-tenant GPU cluster with a mixed-paradigm job trace.
//
// This is the deployment the paper targets (§1, §5): many DDLT jobs with
// heterogeneous communication patterns sharing one fabric. The example
// generates a Poisson trace over all five paradigms, runs it under the three
// schedulers, and prints the cluster-level comparison: mean/p99 iteration
// time, job completion time, GPU idleness, and the Eq. 4 tardiness
// objective.
//
// Run: ./multi_job_cluster [num_jobs] [hosts] [seed]

#include <cstdlib>
#include <iostream>

#include "cluster/experiment.hpp"
#include "cluster/trace.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace echelon;
  cluster::TraceConfig trace_cfg;
  trace_cfg.num_jobs = argc > 1 ? std::atoi(argv[1]) : 12;
  const int hosts = argc > 2 ? std::atoi(argv[2]) : 16;
  trace_cfg.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3]))
                            : 42;
  trace_cfg.arrival_rate = 2.0;
  trace_cfg.iterations = 3;

  const auto jobs = cluster::generate_trace(trace_cfg);
  std::cout << "Trace: " << jobs.size() << " jobs on " << hosts
            << " hosts\n";
  for (const auto& j : jobs) {
    std::cout << "  t=" << Table::num(j.arrival, 2) << "  " << j.describe()
              << "\n";
  }
  std::cout << "\n";

  Table table({"scheduler", "mean iter (s)", "p99 iter (s)", "mean JCT (s)",
               "GPU idle", "sum tardiness (s)"});
  for (const auto kind : {cluster::SchedulerKind::kFairSharing,
                          cluster::SchedulerKind::kCoflowMadd,
                          cluster::SchedulerKind::kEchelonMadd}) {
    cluster::ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.hosts = hosts;
    const auto r = cluster::run_experiment(jobs, cfg);
    const auto iters = r.iteration_samples();
    table.add_row({std::string(cluster::to_string(kind)),
                   Table::num(iters.mean(), 4), Table::num(iters.p99(), 4),
                   Table::num(r.jct_samples().mean(), 4),
                   Table::num(100.0 * r.mean_idle_fraction(), 1) + "%",
                   Table::num(r.total_tardiness, 3)});
  }
  table.print(std::cout);
  return 0;
}
