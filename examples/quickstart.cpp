// Quickstart: the EchelonFlow API in ~80 lines.
//
// Recreates the paper's Fig. 2 motivating example through the public runtime
// API (agent + coordinator), the way a training framework would use it:
//   1. build a fabric and a simulator,
//   2. register an EchelonFlow (arrangement + per-flow info) via the agent,
//   3. post flows as the "computation" produces data,
//   4. read back finish times and tardiness.
//
// Run: ./quickstart

#include <iostream>

#include "common/table.hpp"
#include "netsim/simulator.hpp"
#include "runtime/agent.hpp"
#include "runtime/coordinator.hpp"
#include "topology/builders.hpp"

int main() {
  using namespace echelon;

  // Two hosts behind a non-blocking switch; 1 byte/s ports so the numbers
  // match the paper's abstract units (B = 1).
  auto fabric = topology::make_big_switch(2, /*port_capacity=*/1.0);
  netsim::Simulator sim(&fabric.topo);

  // The coordinator runs EchelonFlow-MADD; the agent is the framework shim.
  runtime::Coordinator coordinator(&sim);
  sim.set_scheduler(&coordinator);
  runtime::EchelonFlowAgent agent(&sim, &coordinator, JobId{0}, "demo");

  // Three micro-batches, each producing 2 bytes of activations; the
  // consumer computes 1 s per micro-batch -> pipeline arrangement with
  // distance T = 1 (Eq. 6).
  runtime::EchelonFlowRequest request;
  request.label = "activations";
  request.arrangement = ef::Arrangement::pipeline(3, /*T=*/1.0);
  for (int i = 0; i < 3; ++i) {
    request.flows.push_back(
        runtime::FlowInfo{2.0, fabric.hosts[0], fabric.hosts[1]});
  }
  const EchelonFlowId ef = agent.register_echelonflow(request);

  // The producer finishes micro-batch i at t = i+1 and posts the flow.
  for (int i = 0; i < 3; ++i) {
    sim.schedule_at(i + 1.0, [&agent, ef, i](netsim::Simulator&) {
      agent.post_flow(ef, i);
    });
  }
  sim.run();

  Table table({"flow", "start", "ideal finish", "actual finish", "tardiness"});
  const ef::EchelonFlow& h = coordinator.registry().get(ef);
  for (const ef::MemberFlow& m : h.members()) {
    table.add_row({"f" + std::to_string(m.index),
                   Table::num(m.start_time, 1),
                   Table::num(*h.ideal_finish(m.index), 1),
                   Table::num(m.finish_time, 1),
                   Table::num(*h.flow_tardiness(m.index), 1)});
  }
  table.print(std::cout);
  std::cout << "\nEchelonFlow tardiness (Eq. 2): " << h.tardiness()
            << "  (flows finish staggered at 3, 5, 7 -- the Fig. 2c optimum)\n";
  return 0;
}
