// Example: a GPipe pipeline-parallel training job on a shared fabric,
// comparing fair sharing, Coflow-MADD and EchelonFlow-MADD end to end.
//
// This is the workload the paper's introduction motivates: a 4-stage
// pipeline whose per-micro-batch activation transfers must finish staggered
// to keep the GPUs busy. The example prints per-scheduler iteration times
// and GPU idleness ("bubble") so the effect of the network abstraction on
// training throughput is directly visible.
//
// Run: ./pipeline_training

#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/pp.hpp"

namespace {

struct Result {
  double iteration_time = 0.0;
  double idle_fraction = 0.0;
  double tardiness = 0.0;
};

Result run_with(const std::string& which) {
  using namespace echelon;
  constexpr int kStages = 4;
  auto fabric = topology::make_big_switch(kStages, gbps(10));
  netsim::Simulator sim(&fabric.topo);

  ef::Registry registry;
  registry.attach(sim);
  std::unique_ptr<netsim::NetworkScheduler> sched;
  if (which == "coflow") {
    sched = std::make_unique<ef::CoflowMaddScheduler>();
  } else if (which == "echelonflow") {
    sched = std::make_unique<ef::EchelonMaddScheduler>(&registry);
  }  // "fair": leave the default
  if (sched) sim.set_scheduler(sched.get());

  const auto placement = workload::make_placement(sim, fabric.hosts);
  // A transformer sliced into 4 stages; big activations make the network
  // matter at 10 Gb/s.
  const auto job = workload::generate_pipeline(
      {.model = workload::make_transformer(8, 4096, 512, 8),
       .gpu = workload::a100(),
       .micro_batches = 6,
       .iterations = 2},
      placement, registry, JobId{0});

  netsim::WorkflowEngine engine(&sim, &job.workflow);
  engine.launch(0.0);
  sim.run();

  Result r;
  const SimTime first = engine.node_finish(job.iteration_end[0]);
  const SimTime second = engine.node_finish(job.iteration_end[1]);
  r.iteration_time = second - first;  // steady-state iteration
  double idle = 0.0;
  for (const WorkerId w : placement.workers) {
    idle += sim.worker(w).idle_fraction();
  }
  r.idle_fraction = idle / static_cast<double>(placement.workers.size());
  r.tardiness = registry.total_tardiness();
  return r;
}

}  // namespace

int main() {
  echelon::Table table(
      {"scheduler", "iteration time (s)", "GPU idle", "sum tardiness (s)"});
  for (const std::string which : {"fair", "coflow", "echelonflow"}) {
    const Result r = run_with(which);
    table.add_row({which, echelon::Table::num(r.iteration_time, 4),
                   echelon::Table::num(100.0 * r.idle_fraction, 1) + "%",
                   echelon::Table::num(r.tardiness, 4)});
  }
  table.print(std::cout);
  std::cout << "\nEchelonFlow keeps the pipeline's staggered deadlines, so the"
               "\nbubble (GPU idleness) and iteration time drop relative to"
               "\nCoflow, which forces simultaneous finishes.\n";
  return 0;
}
